"""The mathematical model (paper Figure 3) as evaluatable objects.

A :class:`SchedulingProblem` carries everything one scheduling round sees:
the VMs to place (:class:`VMRequest`, with per-source expected loads and the
previous schedule), the candidate hosts (:class:`HostView` snapshots with any
out-of-scope VMs still committed), the network, the tariffs and an
:class:`~repro.core.estimators.Estimator` supplying the learned/observed
functions of constraints 5-7.

:func:`placement_profit` scores one tentative (VM, host) pair with the
objective:

    profit = f_revenue(SLA) - f_penalty(Migr, Migl, ISize) - f_energycost

where the SLA term honours constraint 6 (production RT plus per-source
transport latency) and the energy term is the *marginal* facility power the
move adds on the target host — which is how consolidation wins emerge: the
first VM on a sleeping host pays the idle-power jump, co-located VMs pay only
the shallow slope of the Atom curve.

:func:`evaluate_schedule` scores a complete assignment (used by the exact
solver and by tests), and :func:`check_schedule` verifies the hard
constraints (1: one host per VM; 2: capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..sim.demand import LoadVector
from ..sim.machines import PhysicalMachine, Resources, VirtualMachine
from ..sim.network import NetworkModel
from ..sim.power import PowerModel
from .estimators import Estimator
from .profit import PriceBook, energy_cost_eur, migration_penalty_eur
from .sla import SLAContract, weighted_sla

__all__ = ["ObjectiveWeights", "VMRequest", "HostView",
           "SchedulingProblem", "PlacementEvaluation", "placement_profit",
           "evaluate_schedule", "check_schedule", "ScheduleViolation"]


@dataclass(frozen=True)
class ObjectiveWeights:
    """Relative weights of the objective terms.

    The paper's sanity checks use degenerate settings: follow-the-load is
    revenue-only (``energy = migration = 0``); the full scheduler uses all
    ones.
    """

    revenue: float = 1.0
    energy: float = 1.0
    migration: float = 1.0

    def __post_init__(self) -> None:
        if min(self.revenue, self.energy, self.migration) < 0:
            raise ValueError("weights must be non-negative")


@dataclass
class VMRequest:
    """One VM in scope for this scheduling round."""

    vm: VirtualMachine
    contract: SLAContract
    loads: Dict[str, LoadVector]
    current_pm: Optional[str] = None
    current_location: Optional[str] = None
    queue_len: float = 0.0

    @property
    def vm_id(self) -> str:
        return self.vm.vm_id

    @property
    def aggregate_load(self) -> LoadVector:
        return LoadVector.combine(self.loads.values())

    @property
    def total_rps(self) -> float:
        return sum(l.rps for l in self.loads.values())


@dataclass
class HostView:
    """A tentative-packing view of one PM.

    Bookkeeping is *demand*-side: ``committed`` maps each VM (out-of-scope
    residents plus in-scope VMs packed so far) to the resources its load
    requires.  Grants follow the hypervisor's work-conserving sharing (see
    :func:`repro.sim.multidc.proportional_allocation`): spare CPU/bandwidth
    bursts pro-rata, contention scales everyone down.  Demands may exceed
    capacity — that is not a packing error but an overload the profit
    function punishes through collapsing SLA.
    """

    pm_id: str
    location: str
    capacity: Resources
    power_model: PowerModel
    energy_price_eur_kwh: float
    initially_on: bool = True
    committed: Dict[str, Resources] = field(default_factory=dict)
    committed_used_cpu: Dict[str, float] = field(default_factory=dict)

    @staticmethod
    def of(pm: PhysicalMachine, location: str,
           energy_price_eur_kwh: float,
           exclude_vms: Sequence[str] = (),
           demands: Optional[Mapping[str, Resources]] = None) -> "HostView":
        """Snapshot a PM, releasing the VMs being rescheduled this round.

        ``demands`` supplies the last known resource demand per VM (from
        :attr:`repro.sim.multidc.MultiDCSystem.last_demands`); hosted VMs
        missing from it fall back to their recorded grant.
        """
        view = HostView(pm_id=pm.pm_id, location=location,
                        capacity=pm.capacity, power_model=pm.power_model,
                        energy_price_eur_kwh=energy_price_eur_kwh,
                        initially_on=pm.on)
        for vm_id, grant in pm.granted.items():
            if vm_id in exclude_vms:
                continue
            demand = demands.get(vm_id, grant) if demands else grant
            view.committed[vm_id] = demand
            view.committed_used_cpu[vm_id] = min(demand.cpu, grant.cpu)
        return view

    @property
    def used(self) -> Resources:
        total = Resources()
        for r in self.committed.values():
            total = total + r
        return total

    @property
    def free(self) -> Resources:
        return (self.capacity - self.used).clip_nonnegative()

    def would_be_on(self, auto_power_off: bool = True) -> bool:
        """Whether the host runs under the tentative packing.

        With ``auto_power_off`` (the system default), a host that ends the
        round empty is switched off, so only committed VMs keep it
        running — which is what lets the profit function credit
        consolidation with the full idle-power saving.
        """
        return bool(self.committed) or (self.initially_on
                                        and not auto_power_off)

    def grantable(self, required: Resources) -> Resources:
        """The grant the sharing model would give this VM if placed here.

        CPU/bandwidth burst into spare capacity pro-rata (grant =
        demand * capacity / total_demand, at most the full machine);
        memory gets demand when it fits and a proportional share when the
        host is over-committed.
        """
        used = self.used

        def burst(demand: float, other: float, cap: float) -> float:
            # demand * cap / total both bursts (total < cap) and throttles
            # (total > cap); a lone VM may take the whole machine.
            total = demand + other
            if demand <= 0.0 or total <= 0.0:
                return 0.0
            return min(cap, demand * cap / total)

        def share(demand: float, other: float, cap: float) -> float:
            total = demand + other
            if demand <= 0.0:
                return 0.0
            if total <= cap:
                return demand
            return demand * cap / total

        return Resources(
            cpu=burst(required.cpu, used.cpu, self.capacity.cpu),
            mem=share(required.mem, used.mem, self.capacity.mem),
            bw=burst(required.bw, used.bw, self.capacity.bw))

    def commit(self, vm_id: str, demand: Resources, used_cpu: float) -> None:
        """Record a packed VM's demand (overload allowed; see class doc)."""
        if vm_id in self.committed:
            raise ValueError(f"VM {vm_id!r} already committed to {self.pm_id!r}")
        self.committed[vm_id] = demand.clip_nonnegative()
        self.committed_used_cpu[vm_id] = used_cpu

    def release(self, vm_id: str) -> None:
        self.committed.pop(vm_id, None)
        self.committed_used_cpu.pop(vm_id, None)


@dataclass
class SchedulingProblem:
    """One scheduling round's full input."""

    requests: List[VMRequest]
    hosts: List[HostView]
    network: NetworkModel
    prices: PriceBook
    estimator: Estimator
    interval_s: float = 600.0
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    #: Mirror of :attr:`repro.sim.multidc.MultiDCSystem.auto_power_off`.
    auto_power_off: bool = True

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        ids = [h.pm_id for h in self.hosts]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate host ids")
        vms = [r.vm_id for r in self.requests]
        if len(set(vms)) != len(vms):
            raise ValueError("duplicate VM requests")

    def host(self, pm_id: str) -> HostView:
        for h in self.hosts:
            if h.pm_id == pm_id:
                return h
        raise KeyError(f"no host {pm_id!r} in problem")


@dataclass(frozen=True)
class PlacementEvaluation:
    """Outcome of scoring one tentative (VM, host) pair."""

    profit_eur: float
    revenue_eur: float
    energy_cost_eur: float
    migration_penalty_eur: float
    sla: float
    required: Resources
    given: Resources
    used_cpu: float
    migration_seconds: float

    @property
    def fits(self) -> bool:
        """Whether the host granted everything the estimator asked for."""
        return self.required.fits_in(self.given, slack=1e-6)


def _placement_sla(request: VMRequest, host: HostView,
                   network: NetworkModel, estimator: Estimator,
                   required: Resources, given: Resources) -> float:
    """Constraints 6-7: production + transport RT, per-source weighted SLA.

    Uses the estimator's RT when it has one; otherwise converts its direct
    SLA score into the contract's equivalent RT so transport latency can be
    added per source (a conservative, monotone composition).
    """
    agg = request.aggregate_load
    contract = request.contract
    rt_proc = estimator.process_rt(request.vm, agg, required, given,
                                   queue_len=request.queue_len)
    if rt_proc is not None:
        eq_rt = float(rt_proc)
    else:
        sla_proc = estimator.process_sla(request.vm, agg, required, given,
                                         contract,
                                         queue_len=request.queue_len)
        eq_rt = contract.rt_for_fulfillment(sla_proc)
    rt_by_source = {
        src: eq_rt + network.host_to_source_ms(host.location, src) / 1000.0
        for src in request.loads}
    return weighted_sla(rt_by_source,
                        {s: l.rps for s, l in request.loads.items()},
                        contract)


def placement_profit(problem: SchedulingProblem, request: VMRequest,
                     host: HostView,
                     required: Optional[Resources] = None
                     ) -> PlacementEvaluation:
    """Score placing ``request`` on ``host`` given current commitments.

    ``required`` may be passed in to avoid recomputing it across hosts.
    """
    est = problem.estimator
    vm = request.vm
    agg = request.aggregate_load
    if required is None:
        # Deliberately uncapped (matches the schedulers): overload must be
        # visible as demand beyond the host, not silently truncated.
        required = est.required_resources(vm, agg, float("inf"))
    given = host.grantable(required)
    used_cpu = min(required.cpu, given.cpu)

    # SLA -> revenue (with migration blackout haircut).
    sla = _placement_sla(request, host, problem.network, est, required, given)
    hours = problem.interval_s / 3600.0
    migration_s = 0.0
    penalty = 0.0
    if request.current_pm is not None and request.current_pm != host.pm_id:
        migration_s = problem.network.migration_seconds(
            vm.image_size_mb, request.current_location or host.location,
            host.location)
        penalty = migration_penalty_eur(
            migration_s, problem.prices.migration_penalty_rate)
        sla = sla * max(0.0, 1.0 - migration_s / problem.interval_s)
    revenue = request.contract.price_eur_per_hour * sla * hours

    # Marginal energy on the target host.
    cpu_before = est.pm_cpu(list(host.committed_used_cpu.values()))
    cpu_after = est.pm_cpu(
        list(host.committed_used_cpu.values()) + [used_cpu])
    running = host.would_be_on(problem.auto_power_off)
    watts_before = (host.power_model.facility_watts(
        min(cpu_before, host.capacity.cpu)) if running else 0.0)
    watts_after = host.power_model.facility_watts(
        min(cpu_after, host.capacity.cpu))
    energy = energy_cost_eur(max(0.0, watts_after - watts_before),
                             problem.interval_s, host.energy_price_eur_kwh)

    w = problem.weights
    profit = (w.revenue * revenue - w.energy * energy
              - w.migration * penalty)
    return PlacementEvaluation(
        profit_eur=profit, revenue_eur=revenue, energy_cost_eur=energy,
        migration_penalty_eur=penalty, sla=sla, required=required,
        given=given, used_cpu=used_cpu, migration_seconds=migration_s)


def evaluate_schedule(problem: SchedulingProblem,
                      assignment: Mapping[str, str]) -> float:
    """Total objective of a complete assignment ``{vm_id: pm_id}``.

    Requests are packed in the given assignment's problem order, mirroring
    what executing the schedule would grant.  Raises on VMs without an
    assignment (constraint 1).
    """
    missing = {r.vm_id for r in problem.requests} - set(assignment)
    if missing:
        raise ValueError(f"unassigned VMs: {sorted(missing)}")
    # Work on copies so scoring never mutates the problem.
    views = {h.pm_id: HostView(
        pm_id=h.pm_id, location=h.location, capacity=h.capacity,
        power_model=h.power_model,
        energy_price_eur_kwh=h.energy_price_eur_kwh,
        initially_on=h.initially_on, committed=dict(h.committed),
        committed_used_cpu=dict(h.committed_used_cpu))
        for h in problem.hosts}
    total = 0.0
    for request in problem.requests:
        host = views[assignment[request.vm_id]]
        ev = placement_profit(problem, request, host)
        host.commit(request.vm_id, ev.required, ev.used_cpu)
        total += ev.profit_eur
    return total


@dataclass(frozen=True)
class ScheduleViolation:
    """One broken hard constraint."""

    kind: str
    detail: str


def check_schedule(problem: SchedulingProblem,
                   assignment: Mapping[str, str]) -> List[ScheduleViolation]:
    """Verify Figure 3 constraints 1 and 2 for an assignment."""
    violations: List[ScheduleViolation] = []
    host_ids = {h.pm_id for h in problem.hosts}
    for request in problem.requests:
        pm_id = assignment.get(request.vm_id)
        if pm_id is None:
            violations.append(ScheduleViolation(
                "unassigned", f"VM {request.vm_id!r} has no host"))
        elif pm_id not in host_ids:
            violations.append(ScheduleViolation(
                "unknown-host", f"VM {request.vm_id!r} -> {pm_id!r}"))
    # Constraint 2 on *grants* holds by construction (the sharing model
    # never hands out more than capacity); what we can flag is demand
    # overcommit — hosts whose packed demand exceeds capacity and will
    # therefore throttle their VMs.
    views = {h.pm_id: HostView(
        pm_id=h.pm_id, location=h.location, capacity=h.capacity,
        power_model=h.power_model,
        energy_price_eur_kwh=h.energy_price_eur_kwh,
        initially_on=h.initially_on, committed=dict(h.committed),
        committed_used_cpu=dict(h.committed_used_cpu))
        for h in problem.hosts}
    for request in problem.requests:
        pm_id = assignment.get(request.vm_id)
        if pm_id not in views:
            continue
        host = views[pm_id]
        ev = placement_profit(problem, request, host)
        host.commit(request.vm_id, ev.required, ev.used_cpu)
    for host in views.values():
        if not host.used.fits_in(host.capacity, slack=1e-6):
            violations.append(ScheduleViolation(
                "overcommit",
                f"host {host.pm_id!r} demand {host.used} exceeds capacity "
                f"{host.capacity}"))
    return violations
