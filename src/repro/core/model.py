"""The mathematical model (paper Figure 3) as evaluatable objects.

A :class:`SchedulingProblem` carries everything one scheduling round sees:
the VMs to place (:class:`VMRequest`, with per-source expected loads and the
previous schedule), the candidate hosts (:class:`HostView` snapshots with any
out-of-scope VMs still committed), the network, the tariffs and an
:class:`~repro.core.estimators.Estimator` supplying the learned/observed
functions of constraints 5-7.

:func:`placement_profit` scores one tentative (VM, host) pair with the
objective:

    profit = f_revenue(SLA) - f_penalty(Migr, Migl, ISize) - f_energycost

where the SLA term honours constraint 6 (production RT plus per-source
transport latency) and the energy term is the *marginal* facility power the
move adds on the target host — which is how consolidation wins emerge: the
first VM on a sleeping host pays the idle-power jump, co-located VMs pay only
the shallow slope of the Atom curve.

:func:`evaluate_schedule` scores a complete assignment (used by the exact
solver and by tests), and :func:`check_schedule` verifies the hard
constraints (1: one host per VM; 2: capacity).

Batch scoring
-------------

:func:`placement_profit` is the *reference* scalar implementation.  The hot
path of the schedulers is :func:`evaluate_candidates` /
:func:`score_candidates`, which score one VM against *all* candidate hosts in
vectorized numpy over a :class:`HostBatch` — an array-shaped, incrementally
updated snapshot of the host views.  The batch path mirrors the scalar
arithmetic operation-for-operation so the two agree within 1e-9 (the
differential tests enforce this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..sim.demand import LoadVector
from ..sim.machines import PhysicalMachine, Resources, VirtualMachine
from ..sim.network import NetworkModel
from ..sim.power import PowerModel
from .estimators import (Estimator, scalar_process_rt_batch,
                         scalar_process_sla_batch)
from .profit import PriceBook, energy_cost_eur, migration_penalty_eur
from .sla import SLAContract, rt_for_fulfillment_arrays, weighted_sla

__all__ = ["ObjectiveWeights", "VMRequest", "HostView", "HostBatch",
           "SchedulingProblem", "PlacementEvaluation", "BatchEvaluation",
           "RoundScorer", "placement_profit", "evaluate_candidates",
           "score_candidates", "evaluate_schedule", "check_schedule",
           "ScheduleViolation"]


@dataclass(frozen=True)
class ObjectiveWeights:
    """Relative weights of the objective terms.

    The paper's sanity checks use degenerate settings: follow-the-load is
    revenue-only (``energy = migration = 0``); the full scheduler uses all
    ones.
    """

    revenue: float = 1.0
    energy: float = 1.0
    migration: float = 1.0

    def __post_init__(self) -> None:
        if min(self.revenue, self.energy, self.migration) < 0:
            raise ValueError("weights must be non-negative")


@dataclass
class VMRequest:
    """One VM in scope for this scheduling round."""

    vm: VirtualMachine
    contract: SLAContract
    loads: Dict[str, LoadVector]
    current_pm: Optional[str] = None
    current_location: Optional[str] = None
    queue_len: float = 0.0

    @property
    def vm_id(self) -> str:
        return self.vm.vm_id

    @property
    def aggregate_load(self) -> LoadVector:
        return LoadVector.combine(self.loads.values())

    @property
    def total_rps(self) -> float:
        return sum(l.rps for l in self.loads.values())


@dataclass
class HostView:
    """A tentative-packing view of one PM.

    Bookkeeping is *demand*-side: ``committed`` maps each VM (out-of-scope
    residents plus in-scope VMs packed so far) to the resources its load
    requires.  Grants follow the hypervisor's work-conserving sharing (see
    :func:`repro.sim.multidc.proportional_allocation`): spare CPU/bandwidth
    bursts pro-rata, contention scales everyone down.  Demands may exceed
    capacity — that is not a packing error but an overload the profit
    function punishes through collapsing SLA.
    """

    pm_id: str
    location: str
    capacity: Resources
    power_model: PowerModel
    energy_price_eur_kwh: float
    initially_on: bool = True
    committed: Dict[str, Resources] = field(default_factory=dict)
    committed_used_cpu: Dict[str, float] = field(default_factory=dict)

    @staticmethod
    def of(pm: PhysicalMachine, location: str,
           energy_price_eur_kwh: float,
           exclude_vms: Sequence[str] = (),
           demands: Optional[Mapping[str, Resources]] = None) -> "HostView":
        """Snapshot a PM, releasing the VMs being rescheduled this round.

        ``demands`` supplies the last known resource demand per VM (from
        :attr:`repro.sim.multidc.MultiDCSystem.last_demands`); hosted VMs
        missing from it fall back to their recorded grant.
        """
        view = HostView(pm_id=pm.pm_id, location=location,
                        capacity=pm.capacity, power_model=pm.power_model,
                        energy_price_eur_kwh=energy_price_eur_kwh,
                        initially_on=pm.on)
        for vm_id, grant in pm.granted.items():
            if vm_id in exclude_vms:
                continue
            demand = demands.get(vm_id, grant) if demands else grant
            view.committed[vm_id] = demand
            view.committed_used_cpu[vm_id] = min(demand.cpu, grant.cpu)
        return view

    @property
    def used(self) -> Resources:
        total = Resources()
        for r in self.committed.values():
            total = total + r
        return total

    @property
    def free(self) -> Resources:
        return (self.capacity - self.used).clip_nonnegative()

    def would_be_on(self, auto_power_off: bool = True) -> bool:
        """Whether the host runs under the tentative packing.

        With ``auto_power_off`` (the system default), a host that ends the
        round empty is switched off, so only committed VMs keep it
        running — which is what lets the profit function credit
        consolidation with the full idle-power saving.
        """
        return bool(self.committed) or (self.initially_on
                                        and not auto_power_off)

    def grantable(self, required: Resources) -> Resources:
        """The grant the sharing model would give this VM if placed here.

        CPU/bandwidth burst into spare capacity pro-rata (grant =
        demand * capacity / total_demand, at most the full machine);
        memory gets demand when it fits and a proportional share when the
        host is over-committed.
        """
        used = self.used

        def burst(demand: float, other: float, cap: float) -> float:
            # demand * cap / total both bursts (total < cap) and throttles
            # (total > cap); a lone VM may take the whole machine.
            total = demand + other
            if demand <= 0.0 or total <= 0.0:
                return 0.0
            return min(cap, demand * cap / total)

        def share(demand: float, other: float, cap: float) -> float:
            total = demand + other
            if demand <= 0.0:
                return 0.0
            if total <= cap:
                return demand
            return demand * cap / total

        return Resources(
            cpu=burst(required.cpu, used.cpu, self.capacity.cpu),
            mem=share(required.mem, used.mem, self.capacity.mem),
            bw=burst(required.bw, used.bw, self.capacity.bw))

    def commit(self, vm_id: str, demand: Resources, used_cpu: float) -> None:
        """Record a packed VM's demand (overload allowed; see class doc)."""
        if vm_id in self.committed:
            raise ValueError(f"VM {vm_id!r} already committed to {self.pm_id!r}")
        self.committed[vm_id] = demand.clip_nonnegative()
        self.committed_used_cpu[vm_id] = used_cpu

    def release(self, vm_id: str) -> None:
        self.committed.pop(vm_id, None)
        self.committed_used_cpu.pop(vm_id, None)


class HostBatch:
    """Array-shaped, incrementally maintained snapshot of host views.

    Column ``i`` of every array describes ``hosts[i]``.  The batch scorer
    reads only these arrays (plus per-location and per-power-model index
    groups computed once), so scoring a VM against ``n`` hosts is a handful
    of length-``n`` numpy operations instead of ``n`` Python calls.

    Mutations go through :meth:`commit` / :meth:`release`, which update the
    underlying :class:`HostView` and then :meth:`refresh` *only the changed
    column* — the incremental contract that lets Best-Fit reuse one batch
    across a whole scheduling round.  (The simulator-side sibling is
    :class:`repro.sim.fleet.FleetState`, which snapshots a whole
    (system, trace) pair the same way for batch interval stepping.)

    Aggregates deliberately mirror the scalar path's arithmetic:
    ``used_*`` accumulates in the same order as :attr:`HostView.used` and
    ``committed_cpu_sum`` uses the same ``np.sum`` as the estimators'
    ``pm_cpu``, so batch and scalar scores agree within 1e-9.
    """

    def __init__(self, hosts: Sequence[HostView]) -> None:
        self.hosts: List[HostView] = list(hosts)
        n = len(self.hosts)
        self.index: Dict[str, int] = {h.pm_id: i
                                      for i, h in enumerate(self.hosts)}
        if len(self.index) != n:
            raise ValueError("duplicate host ids in batch")
        self.cap_cpu = np.array([h.capacity.cpu for h in self.hosts])
        self.cap_mem = np.array([h.capacity.mem for h in self.hosts])
        self.cap_bw = np.array([h.capacity.bw for h in self.hosts])
        self.energy_price = np.array([h.energy_price_eur_kwh
                                      for h in self.hosts])
        self.initially_on = np.array([h.initially_on for h in self.hosts],
                                     dtype=bool)
        self.used_cpu = np.zeros(n)
        self.used_mem = np.zeros(n)
        self.used_bw = np.zeros(n)
        self.committed_cpu_sum = np.zeros(n)
        self.committed_count = np.zeros(n, dtype=np.intp)
        for i in range(n):
            self.refresh(i)
        # Few distinct locations / power curves per fleet: group host
        # indices so latency and power lookups vectorize per group.
        by_loc: Dict[str, List[int]] = {}
        for i, h in enumerate(self.hosts):
            by_loc.setdefault(h.location, []).append(i)
        self.location_groups: Dict[str, np.ndarray] = {
            loc: np.asarray(ix, dtype=np.intp)
            for loc, ix in by_loc.items()}
        by_pm: Dict[PowerModel, List[int]] = {}
        for i, h in enumerate(self.hosts):
            by_pm.setdefault(h.power_model, []).append(i)
        self.power_groups: List[Tuple[PowerModel, np.ndarray]] = [
            (model, np.asarray(ix, dtype=np.intp))
            for model, ix in by_pm.items()]

    @staticmethod
    def of(hosts: Sequence[HostView]) -> "HostBatch":
        return HostBatch(hosts)

    def __len__(self) -> int:
        return len(self.hosts)

    def refresh(self, i: int) -> None:
        """Recompute column ``i`` from its host view (O(VMs on that host))."""
        view = self.hosts[i]
        cpu = mem = bw = 0.0
        # Same accumulation order as HostView.used.
        for r in view.committed.values():
            cpu += r.cpu
            mem += r.mem
            bw += r.bw
        self.used_cpu[i] = cpu
        self.used_mem[i] = mem
        self.used_bw[i] = bw
        # Same np.sum the estimators' pm_cpu applies to the scalar list.
        self.committed_cpu_sum[i] = float(np.sum(np.asarray(
            list(view.committed_used_cpu.values()), dtype=float)))
        self.committed_count[i] = len(view.committed)

    def commit(self, i: int, vm_id: str, demand: Resources,
               used_cpu: float) -> None:
        self.hosts[i].commit(vm_id, demand, used_cpu)
        self.refresh(i)

    def release(self, i: int, vm_id: str) -> None:
        self.hosts[i].release(vm_id)
        self.refresh(i)

    def would_be_on(self, auto_power_off: bool = True) -> np.ndarray:
        """Vectorized :meth:`HostView.would_be_on` over the batch."""
        on = self.committed_count > 0
        if not auto_power_off:
            on = on | self.initially_on
        return on


@dataclass
class SchedulingProblem:
    """One scheduling round's full input."""

    requests: List[VMRequest]
    hosts: List[HostView]
    network: NetworkModel
    prices: PriceBook
    estimator: Estimator
    interval_s: float = 600.0
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    #: Mirror of :attr:`repro.sim.multidc.MultiDCSystem.auto_power_off`.
    auto_power_off: bool = True

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        ids = [h.pm_id for h in self.hosts]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate host ids")
        vms = [r.vm_id for r in self.requests]
        if len(set(vms)) != len(vms):
            raise ValueError("duplicate VM requests")

    def host(self, pm_id: str) -> HostView:
        for h in self.hosts:
            if h.pm_id == pm_id:
                return h
        raise KeyError(f"no host {pm_id!r} in problem")


@dataclass(frozen=True)
class PlacementEvaluation:
    """Outcome of scoring one tentative (VM, host) pair."""

    profit_eur: float
    revenue_eur: float
    energy_cost_eur: float
    migration_penalty_eur: float
    sla: float
    required: Resources
    given: Resources
    used_cpu: float
    migration_seconds: float

    @property
    def fits(self) -> bool:
        """Whether the host granted everything the estimator asked for."""
        return self.required.fits_in(self.given, slack=1e-6)


def _placement_sla(request: VMRequest, host: HostView,
                   network: NetworkModel, estimator: Estimator,
                   required: Resources, given: Resources) -> float:
    """Constraints 6-7: production + transport RT, per-source weighted SLA.

    Uses the estimator's RT when it has one; otherwise converts its direct
    SLA score into the contract's equivalent RT so transport latency can be
    added per source (a conservative, monotone composition).
    """
    agg = request.aggregate_load
    contract = request.contract
    rt_proc = estimator.process_rt(request.vm, agg, required, given,
                                   queue_len=request.queue_len)
    if rt_proc is not None:
        eq_rt = float(rt_proc)
    else:
        sla_proc = estimator.process_sla(request.vm, agg, required, given,
                                         contract,
                                         queue_len=request.queue_len)
        eq_rt = contract.rt_for_fulfillment(sla_proc)
    rt_by_source = {
        src: eq_rt + network.host_to_source_ms(host.location, src) / 1000.0
        for src in request.loads}
    return weighted_sla(rt_by_source,
                        {s: l.rps for s, l in request.loads.items()},
                        contract)


def placement_profit(problem: SchedulingProblem, request: VMRequest,
                     host: HostView,
                     required: Optional[Resources] = None
                     ) -> PlacementEvaluation:
    """Score placing ``request`` on ``host`` given current commitments.

    ``required`` may be passed in to avoid recomputing it across hosts.
    """
    est = problem.estimator
    vm = request.vm
    agg = request.aggregate_load
    if required is None:
        # Deliberately uncapped (matches the schedulers): overload must be
        # visible as demand beyond the host, not silently truncated.
        required = est.required_resources(vm, agg, float("inf"))
    given = host.grantable(required)
    used_cpu = min(required.cpu, given.cpu)

    # SLA -> revenue (with migration blackout haircut).
    sla = _placement_sla(request, host, problem.network, est, required, given)
    hours = problem.interval_s / 3600.0
    migration_s = 0.0
    penalty = 0.0
    if request.current_pm is not None and request.current_pm != host.pm_id:
        migration_s = problem.network.migration_seconds(
            vm.image_size_mb, request.current_location or host.location,
            host.location)
        penalty = migration_penalty_eur(
            migration_s, problem.prices.migration_penalty_rate)
        sla = sla * max(0.0, 1.0 - migration_s / problem.interval_s)
    revenue = request.contract.price_eur_per_hour * sla * hours

    # Marginal energy on the target host.
    cpu_before = est.pm_cpu(list(host.committed_used_cpu.values()))
    cpu_after = est.pm_cpu(
        list(host.committed_used_cpu.values()) + [used_cpu])
    running = host.would_be_on(problem.auto_power_off)
    watts_before = (host.power_model.facility_watts(
        min(cpu_before, host.capacity.cpu)) if running else 0.0)
    watts_after = host.power_model.facility_watts(
        min(cpu_after, host.capacity.cpu))
    energy = energy_cost_eur(max(0.0, watts_after - watts_before),
                             problem.interval_s, host.energy_price_eur_kwh)

    w = problem.weights
    profit = (w.revenue * revenue - w.energy * energy
              - w.migration * penalty)
    return PlacementEvaluation(
        profit_eur=profit, revenue_eur=revenue, energy_cost_eur=energy,
        migration_penalty_eur=penalty, sla=sla, required=required,
        given=given, used_cpu=used_cpu, migration_seconds=migration_s)


@dataclass(frozen=True)
class BatchEvaluation:
    """Outcome of scoring one VM against every host of a :class:`HostBatch`.

    All arrays are aligned with the batch's host order; ``required`` is the
    (host-independent) demand estimate shared by every column.
    :meth:`evaluation` materializes one column as the scalar
    :class:`PlacementEvaluation`.
    """

    pm_ids: Tuple[str, ...]
    required: Resources
    profit_eur: np.ndarray
    revenue_eur: np.ndarray
    energy_cost_eur: np.ndarray
    migration_penalty_eur: np.ndarray
    sla: np.ndarray
    given_cpu: np.ndarray
    given_mem: np.ndarray
    given_bw: np.ndarray
    used_cpu: np.ndarray
    migration_seconds: np.ndarray

    def __len__(self) -> int:
        return len(self.pm_ids)

    def evaluation(self, i: int) -> PlacementEvaluation:
        return PlacementEvaluation(
            profit_eur=float(self.profit_eur[i]),
            revenue_eur=float(self.revenue_eur[i]),
            energy_cost_eur=float(self.energy_cost_eur[i]),
            migration_penalty_eur=float(self.migration_penalty_eur[i]),
            sla=float(self.sla[i]),
            required=self.required,
            given=Resources(cpu=float(self.given_cpu[i]),
                            mem=float(self.given_mem[i]),
                            bw=float(self.given_bw[i])),
            used_cpu=float(self.used_cpu[i]),
            migration_seconds=float(self.migration_seconds[i]))


def _burst_vec(demand: float, other: np.ndarray,
               cap: np.ndarray) -> np.ndarray:
    """Vectorized twin of ``HostView.grantable``'s ``burst``."""
    total = demand + other
    blocked = (demand <= 0.0) | (total <= 0.0)
    safe_total = np.where(blocked, 1.0, total)
    out = np.minimum(cap, demand * cap / safe_total)
    return np.where(blocked, 0.0, out)


def _share_vec(demand: float, other: np.ndarray,
               cap: np.ndarray) -> np.ndarray:
    """Vectorized twin of ``HostView.grantable``'s ``share``."""
    if demand <= 0.0:
        return np.zeros_like(other)
    total = demand + other
    return np.where(total <= cap, demand, demand * cap / total)


def _est_rt_batch(est, vm, load, required: Resources, given_cpu, given_mem,
                  given_bw, queue_len: float) -> Optional[np.ndarray]:
    """Estimator RT over a host batch, falling back to scalar calls.

    Estimators are duck-typed (they need not subclass
    :class:`~repro.core.estimators.Estimator`), so the vectorized method is
    optional; without it the shared scalar-loop fallback runs.
    """
    fn = getattr(est, "process_rt_batch", None)
    if fn is not None:
        return fn(vm, load, required, given_cpu, given_mem, given_bw,
                  queue_len=queue_len)
    return scalar_process_rt_batch(est, vm, load, required, given_cpu,
                                   given_mem, given_bw, queue_len=queue_len)


def _est_sla_batch(est, vm, load, required: Resources, given_cpu, given_mem,
                   given_bw, contract, queue_len: float) -> np.ndarray:
    """Estimator SLA over a host batch, falling back to scalar calls."""
    fn = getattr(est, "process_sla_batch", None)
    if fn is not None:
        return fn(vm, load, required, given_cpu, given_mem, given_bw,
                  contract, queue_len=queue_len)
    return scalar_process_sla_batch(est, vm, load, required, given_cpu,
                                    given_mem, given_bw, contract,
                                    queue_len=queue_len)


def _batch_sla(problem: SchedulingProblem, request: VMRequest,
               batch: HostBatch, required: Resources,
               given_cpu: np.ndarray, given_mem: np.ndarray,
               given_bw: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_placement_sla` over every host of the batch."""
    est = problem.estimator
    agg = request.aggregate_load
    contract = request.contract
    n = len(batch)
    rt_proc = _est_rt_batch(est, request.vm, agg, required, given_cpu,
                            given_mem, given_bw, request.queue_len)
    if rt_proc is not None:
        eq_rt = np.asarray(rt_proc, dtype=float)
    else:
        sla_proc = np.asarray(_est_sla_batch(
            est, request.vm, agg, required, given_cpu, given_mem, given_bw,
            contract, request.queue_len), dtype=float)
        eq_rt = rt_for_fulfillment_arrays(sla_proc, contract.rt0,
                                          contract.alpha)
    # weighted_sla over the request's sources, with per-host latencies.
    lat_s = {loc: {src: problem.network.host_to_source_ms(loc, src) / 1000.0
                   for src in request.loads}
             for loc in batch.location_groups}
    total = np.zeros(n)
    weight = 0.0
    for src, load in request.loads.items():
        rps = load.rps
        if rps == 0.0:
            continue
        rt_src = np.empty(n)
        for loc, ix in batch.location_groups.items():
            rt_src[ix] = eq_rt[ix] + lat_s[loc][src]
        total += contract.fulfillment(rt_src) * rps
        weight += rps
    if weight == 0.0:
        return np.ones(n)
    return total / weight


def _batch_pm_cpu(est, batch: HostBatch, counts: np.ndarray,
                  sums: np.ndarray,
                  extra_cpu: Optional[np.ndarray] = None) -> np.ndarray:
    """Estimator PM-CPU over per-host (count, sum) aggregates.

    Falls back to per-host scalar ``pm_cpu`` calls for estimators without a
    vectorized path (``extra_cpu`` appends the tentative VM per host).
    """
    fn = getattr(est, "pm_cpu_batch", None)
    out = fn(counts, sums) if fn is not None else None
    if out is not None:
        return np.asarray(out, dtype=float)
    vals = []
    for i, host in enumerate(batch.hosts):
        cpus = list(host.committed_used_cpu.values())
        if extra_cpu is not None:
            cpus = cpus + [float(extra_cpu[i])]
        vals.append(est.pm_cpu(cpus))
    return np.asarray(vals, dtype=float)


def evaluate_candidates(problem: SchedulingProblem, request: VMRequest,
                        hosts, required: Optional[Resources] = None
                        ) -> BatchEvaluation:
    """Score placing ``request`` on every host of a batch, vectorized.

    ``hosts`` is a :class:`HostBatch` (reused across a scheduling round) or
    any sequence of :class:`HostView` (a throwaway batch is built).  The
    result matches a loop of :func:`placement_profit` calls within 1e-9 on
    every field.  ``required`` may be passed to avoid re-estimating the
    VM's demand when scoring the same request against several batches.
    Estimators without ``*_batch`` methods transparently fall back to
    per-host scalar calls, so any duck-typed estimator works (just slower).
    """
    batch = hosts if isinstance(hosts, HostBatch) else HostBatch.of(hosts)
    est = problem.estimator
    vm = request.vm
    agg = request.aggregate_load
    if required is None:
        required = est.required_resources(vm, agg, float("inf"))
    given_cpu = _burst_vec(required.cpu, batch.used_cpu, batch.cap_cpu)
    given_mem = _share_vec(required.mem, batch.used_mem, batch.cap_mem)
    given_bw = _burst_vec(required.bw, batch.used_bw, batch.cap_bw)
    used_cpu = np.minimum(required.cpu, given_cpu)

    # SLA -> revenue (with migration blackout haircut).
    sla = _batch_sla(problem, request, batch, required,
                     given_cpu, given_mem, given_bw)
    hours = problem.interval_s / 3600.0
    n = len(batch)
    migration_s = np.zeros(n)
    penalty = np.zeros(n)
    if request.current_pm is not None:
        staying = np.zeros(n, dtype=bool)
        cur = batch.index.get(request.current_pm)
        if cur is not None:
            staying[cur] = True
        for loc, ix in batch.location_groups.items():
            migration_s[ix] = problem.network.migration_seconds(
                vm.image_size_mb, request.current_location or loc, loc)
        migration_s[staying] = 0.0
        penalty = (problem.prices.migration_penalty_rate * migration_s
                   / 3600.0)
        sla = sla * np.maximum(0.0, 1.0 - migration_s / problem.interval_s)
    revenue = request.contract.price_eur_per_hour * sla * hours

    # Marginal energy on each target host.
    cpu_before = _batch_pm_cpu(est, batch, batch.committed_count,
                               batch.committed_cpu_sum)
    cpu_after = _batch_pm_cpu(est, batch, batch.committed_count + 1,
                              batch.committed_cpu_sum + used_cpu,
                              extra_cpu=used_cpu)
    running = batch.would_be_on(problem.auto_power_off)
    watts_before = np.empty(n)
    watts_after = np.empty(n)
    for model, ix in batch.power_groups:
        watts_before[ix] = model.facility_watts(
            np.minimum(cpu_before[ix], batch.cap_cpu[ix]))
        watts_after[ix] = model.facility_watts(
            np.minimum(cpu_after[ix], batch.cap_cpu[ix]))
    watts_before = np.where(running, watts_before, 0.0)
    energy = (np.maximum(0.0, watts_after - watts_before)
              * problem.interval_s / 3600.0 / 1000.0 * batch.energy_price)

    w = problem.weights
    profit = (w.revenue * revenue - w.energy * energy
              - w.migration * penalty)
    return BatchEvaluation(
        pm_ids=tuple(h.pm_id for h in batch.hosts), required=required,
        profit_eur=profit, revenue_eur=revenue, energy_cost_eur=energy,
        migration_penalty_eur=penalty, sla=sla, given_cpu=given_cpu,
        given_mem=given_mem, given_bw=given_bw, used_cpu=used_cpu,
        migration_seconds=migration_s)


class RoundScorer:
    """Precomputed scoring context for one packing problem over one batch.

    :func:`evaluate_candidates` re-derives per-call everything a host batch
    does not carry — the latency of every (host, source) pair, migration
    timing per location, the estimator's batch methods, the host power
    state — which costs more than the actual arithmetic once a scheduling
    round scores hundreds of VMs.  A ``RoundScorer`` hoists all of that to
    problem scope and keeps it between VMs:

    * latency and migration columns are materialized once per (source) and
      per (origin location) and cached;
    * estimator dispatch is resolved once (estimators without the batch
      interface raise ``ValueError`` — callers fall back to
      :func:`evaluate_candidates`, which loops scalars);
    * the "watts before" vector — the facility power of every host under
      the current tentative packing — is cached and refreshed only on
      :meth:`commit`.

    :meth:`evaluate` mirrors :func:`evaluate_candidates`' arithmetic; the
    only deviations are mathematically-neutral regroupings (a stacked
    per-source SLA reduction, prefused unit conversions) whose floating-
    point drift is bounded by a few ulp — far inside the 1e-9 equivalence
    contract, with identical assignments on every differential scenario
    (``tests/core/test_round_snapshot.py`` pins both).  All mutations
    must go through :meth:`commit` so the cached host state stays in
    lockstep; the underlying :class:`HostView` objects are *not* updated
    during packing (the batch columns are authoritative).
    """

    def __init__(self, problem: SchedulingProblem, batch: HostBatch) -> None:
        self.problem = problem
        self.batch = batch
        est = problem.estimator
        self._rt_fn = getattr(est, "process_rt_batch", None)
        self._sla_fn = getattr(est, "process_sla_batch", None)
        self._pm_fn = getattr(est, "pm_cpu_batch", None)
        if self._sla_fn is None or self._pm_fn is None:
            raise ValueError("estimator lacks the batch interface")
        # Probe once: pm_cpu_batch may decline (None) at call time.
        probe = self._pm_fn(batch.committed_count, batch.committed_cpu_sum)
        if probe is None:
            raise ValueError("estimator lacks a vectorized pm_cpu")
        n = len(batch)
        self.n = n
        self._pm_ids = tuple(h.pm_id for h in batch.hosts)
        self._hours = problem.interval_s / 3600.0
        # Host -> location-group index, for expanding per-location columns.
        self._locations: List[str] = list(batch.location_groups)
        loc_of = np.empty(n, dtype=np.intp)
        for li, loc in enumerate(self._locations):
            loc_of[batch.location_groups[loc]] = li
        self._loc_of = loc_of
        self._lat_cache: Dict[str, np.ndarray] = {}
        self._lat_mat_cache: Dict[Tuple[str, ...], np.ndarray] = {}
        self._mig_cache: Dict[Tuple[Optional[str], float],
                              Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        # Per-host committed bookkeeping, array-native: the packing loop
        # never reads the HostViews back, so commits update only these
        # (same running folds HostBatch.refresh would recompute).
        self._used_cpu_lists: List[List[float]] = [
            list(h.committed_used_cpu.values()) for h in batch.hosts]
        self._energy_k = (problem.interval_s / 3600.0 / 1000.0
                          * batch.energy_price)
        # CPU and bandwidth burst with the same formula: score both in one
        # stacked pass over precomputed (2, n) capacity rows.  The used
        # rows are mirrored from the batch and refreshed per commit.
        self._cap_cpu_bw = np.stack([batch.cap_cpu, batch.cap_bw])
        self._used_cpu_bw = np.stack([batch.used_cpu, batch.used_bw])
        self._zeros = np.zeros(n)
        # Shared as the no-migration column of every stay-at-home
        # evaluation; freeze so result consumers cannot corrupt it.
        self._zeros.setflags(write=False)
        self._unit_weights = (problem.weights.revenue == 1.0
                              and problem.weights.energy == 1.0
                              and problem.weights.migration == 1.0)
        self._refresh_host_state()

    # -- cached per-problem columns -------------------------------------------
    def _lat_col(self, src: str) -> np.ndarray:
        """Transport latency (s) from every host to ``src``, cached."""
        col = self._lat_cache.get(src)
        if col is None:
            net = self.problem.network
            per_loc = np.asarray(
                [net.host_to_source_ms(loc, src) / 1000.0
                 for loc in self._locations], dtype=float)
            col = per_loc[self._loc_of]
            # Handed out across calls (and, under the service layer, across
            # threads): freeze so a stray in-place op raises instead of
            # corrupting every later round.
            col.setflags(write=False)
            self._lat_cache[src] = col
        return col

    def _mig_cols(self, from_loc: Optional[str], image_mb: float
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Migration columns from ``from_loc`` for one image size, cached.

        Returns ``(migration_s, penalty, haircut)`` — the migration time
        to every host (equal to
        :meth:`~repro.sim.network.NetworkModel.migration_seconds`
        element-for-element; ``from_loc=None`` means "each host's own
        location", the scalar path's ``current_location or loc`` case),
        the penalty it costs and the SLA blackout factor it implies.
        Fleets typically share one image size and few origin locations, so
        these all hit the cache.  The arrays are returned read-only
        (mutation raises) — the stay-put column is patched on copies in
        :meth:`evaluate`.
        """
        key = (from_loc, image_mb)
        cached = self._mig_cache.get(key)
        if cached is None:
            net = self.problem.network
            n_loc = len(self._locations)
            denom = np.empty(n_loc)
            lat_s = np.empty(n_loc)
            for li, loc in enumerate(self._locations):
                same = from_loc is None or from_loc == loc
                gbps = net.intra_dc_gbps if same else net.bandwidth_gbps
                ms = (net.intra_dc_ms if same
                      else net.latency.ms(from_loc, loc))
                denom[li] = gbps * 1000.0
                lat_s[li] = ms / 1000.0
            migration_s = (image_mb * 8.0 / denom
                           + lat_s)[self._loc_of]
            penalty = (self.problem.prices.migration_penalty_rate
                       * migration_s / 3600.0)
            haircut = np.maximum(0.0, 1.0 - migration_s
                                 / self.problem.interval_s)
            for arr in (migration_s, penalty, haircut):
                arr.setflags(write=False)
            cached = (migration_s, penalty, haircut)
            self._mig_cache[key] = cached
        return cached

    def _lat_mat(self, srcs: Tuple[str, ...]) -> np.ndarray:
        """Stacked latency rows for one source set (row per source)."""
        mat = self._lat_mat_cache.get(srcs)
        if mat is None:
            # np.stack copies, so the stacked matrix is writable even when
            # the per-source columns are frozen — freeze it too.
            mat = np.stack([self._lat_col(s) for s in srcs])
            mat.setflags(write=False)
            self._lat_mat_cache[srcs] = mat
        return mat

    def _refresh_host_state(self) -> None:
        """Recompute the packing-dependent host vectors (after commits).

        Exactly what :func:`evaluate_candidates` derives per call: the
        estimator's PM CPU for the current commitments, the facility watts
        at that CPU, masked by which hosts would be running.
        """
        batch = self.batch
        cpu_before = np.asarray(
            self._pm_fn(batch.committed_count, batch.committed_cpu_sum),
            dtype=float)
        watts_before = np.empty(self.n)
        for model, ix in batch.power_groups:
            watts_before[ix] = model.facility_watts(
                np.minimum(cpu_before[ix], batch.cap_cpu[ix]))
        running = batch.would_be_on(self.problem.auto_power_off)
        self._watts_before_run = np.where(running, watts_before, 0.0)

    def commit(self, i: int, vm_id: str, demand: Resources,
               used_cpu: float) -> None:
        """Commit a packed VM and refresh the cached host state.

        Array-native: the packing loop never reads the host views back,
        so only the batch columns are updated — with the same running
        folds :meth:`HostBatch.refresh` computes (bit-identical values).
        Only column ``i`` changed, so only it is recomputed — valid
        because ``pm_cpu_batch`` is elementwise per host (it maps each
        host's own (count, sum) aggregate; all built-in estimators are),
        as is the piecewise power curve.  A committed host always counts
        as running, so the watts-before mask needs no re-evaluation.
        """
        batch = self.batch
        # The same clip + sequential accumulation HostView.commit +
        # refresh would apply.
        batch.used_cpu[i] += max(0.0, demand.cpu)
        batch.used_mem[i] += max(0.0, demand.mem)
        batch.used_bw[i] += max(0.0, demand.bw)
        cpus = self._used_cpu_lists[i]
        cpus.append(used_cpu)
        batch.committed_cpu_sum[i] = float(np.sum(np.asarray(cpus,
                                                             dtype=float)))
        batch.committed_count[i] += 1
        self._used_cpu_bw[0, i] = batch.used_cpu[i]
        self._used_cpu_bw[1, i] = batch.used_bw[i]
        col = slice(i, i + 1)
        cpu_before = np.asarray(
            self._pm_fn(batch.committed_count[col],
                        batch.committed_cpu_sum[col]), dtype=float)
        watts = batch.hosts[i].power_model.facility_watts(
            np.minimum(cpu_before, batch.cap_cpu[col]))
        self._watts_before_run[i] = watts[0]

    # -- single-VM queries over a shared scorer ---------------------------------
    def evaluate_released(self, request: VMRequest, required: Resources,
                          agg: Optional[LoadVector] = None
                          ) -> BatchEvaluation:
        """Score ``request`` with its own VM released, on a shared batch.

        The warm-serving batch entry point: a single-VM problem differs
        from a nothing-released batch only in the VM's current host
        column (the scope release of
        :meth:`~repro.core.bestfit.SchedulingRound.problem` touches
        exactly the host holding the VM).  Instead of building a fresh
        problem + scorer per query — a full host walk plus two
        whole-batch estimator passes — the column is released in place,
        scored, and restored.  Values are bit-identical to a fresh
        single-VM problem's scorer by the same elementwise-per-host
        contract :meth:`commit` relies on: ``pm_cpu_batch``, the power
        curves and the running mask all map each host's own aggregates,
        so recomputing one column equals the full-batch recompute at
        that column.
        """
        batch = self.batch
        vm_id = request.vm_id
        cur = (batch.index.get(request.current_pm)
               if request.current_pm is not None else None)
        if cur is None or vm_id not in batch.hosts[cur].committed:
            # Unplaced VM (or host outside the batch): releasing is a
            # no-op, the shared state already matches the fresh problem.
            return self.evaluate(request, required, agg=agg)
        i = cur
        original = batch.hosts[i]
        saved = (batch.used_cpu[i], batch.used_mem[i], batch.used_bw[i],
                 batch.committed_cpu_sum[i], batch.committed_count[i],
                 self._used_cpu_lists[i], self._used_cpu_bw[0, i],
                 self._used_cpu_bw[1, i], self._watts_before_run[i])
        # The released view mirrors problem()'s scope comprehension:
        # the same dicts minus this VM, insertion order preserved, so
        # the column folds are bit-identical to a fresh build.
        released = HostView(
            pm_id=original.pm_id, location=original.location,
            capacity=original.capacity,
            power_model=original.power_model,
            energy_price_eur_kwh=original.energy_price_eur_kwh,
            initially_on=original.initially_on,
            committed={v: d for v, d in original.committed.items()
                       if v != vm_id},
            committed_used_cpu={
                v: u for v, u in original.committed_used_cpu.items()
                if v != vm_id})
        try:
            batch.hosts[i] = released
            batch.refresh(i)
            self._used_cpu_lists[i] = list(
                released.committed_used_cpu.values())
            self._used_cpu_bw[0, i] = batch.used_cpu[i]
            self._used_cpu_bw[1, i] = batch.used_bw[i]
            # One-column watts-before recompute, exactly like commit();
            # would_be_on is elementwise, so only this host's running
            # state can differ from the cached mask.
            col = slice(i, i + 1)
            cpu_before = np.asarray(
                self._pm_fn(batch.committed_count[col],
                            batch.committed_cpu_sum[col]), dtype=float)
            watts = original.power_model.facility_watts(
                np.minimum(cpu_before, batch.cap_cpu[col]))
            running = bool(batch.committed_count[i] > 0
                           or (not self.problem.auto_power_off
                               and batch.initially_on[i]))
            self._watts_before_run[i] = watts[0] if running else 0.0
            return self.evaluate(request, required, agg=agg)
        finally:
            batch.hosts[i] = original
            (batch.used_cpu[i], batch.used_mem[i], batch.used_bw[i],
             batch.committed_cpu_sum[i], batch.committed_count[i],
             self._used_cpu_lists[i], self._used_cpu_bw[0, i],
             self._used_cpu_bw[1, i],
             self._watts_before_run[i]) = saved

    # -- scoring ----------------------------------------------------------------
    def evaluate(self, request: VMRequest, required: Resources,
                 agg: Optional[LoadVector] = None) -> BatchEvaluation:
        """Score ``request`` on every host; :func:`evaluate_candidates` twin.

        ``agg`` may pass the request's precomputed aggregate load (the
        round snapshot keeps it); omitted, it is derived like the
        reference does.
        """
        problem, batch = self.problem, self.batch
        vm = request.vm
        if agg is None:
            agg = request.aggregate_load
        n = self.n
        if required.cpu > 0.0 and required.bw > 0.0:
            # Both bursts in one stacked pass (identical formula per row).
            demand = np.array([[required.cpu], [required.bw]])
            total = demand + self._used_cpu_bw
            blocked = total <= 0.0
            safe_total = np.where(blocked, 1.0, total)
            burst = np.where(blocked, 0.0,
                             np.minimum(self._cap_cpu_bw,
                                        demand * self._cap_cpu_bw
                                        / safe_total))
            given_cpu = burst[0]
            given_bw = burst[1]
        else:
            given_cpu = _burst_vec(required.cpu, batch.used_cpu,
                                   batch.cap_cpu)
            given_bw = _burst_vec(required.bw, batch.used_bw, batch.cap_bw)
        given_mem = _share_vec(required.mem, batch.used_mem, batch.cap_mem)
        used_cpu = np.minimum(required.cpu, given_cpu)

        # SLA: per-source fulfillment at (process + transport) RT, rate-
        # weighted — the same accumulation _batch_sla runs, with the
        # latency columns precomputed and the contract validated once.
        contract = request.contract
        rt_proc = (self._rt_fn(vm, agg, required, given_cpu, given_mem,
                               given_bw, queue_len=request.queue_len)
                   if self._rt_fn is not None else None)
        if rt_proc is not None:
            eq_rt = np.asarray(rt_proc, dtype=float)
        else:
            sla_proc = np.asarray(
                self._sla_fn(vm, agg, required, given_cpu, given_mem,
                             given_bw, contract,
                             queue_len=request.queue_len), dtype=float)
            eq_rt = rt_for_fulfillment_arrays(sla_proc, contract.rt0,
                                              contract.alpha)
        rt0 = contract.rt0
        denom = (contract.alpha - 1.0) * rt0
        loads = request.loads
        rps_vec = np.array([load.rps for load in loads.values()])
        if rps_vec.size and rps_vec.min() > 0.0:
            # All sources live: one stacked fulfillment pass over the
            # (sources, hosts) RT matrix, reduced along sources.
            rt_srcs = eq_rt + self._lat_mat(tuple(loads))
            f = np.minimum(np.maximum(1.0 - (rt_srcs - rt0) / denom, 0.0),
                           1.0)
            sla = (f * rps_vec[:, None]).sum(axis=0) / rps_vec.sum()
        else:
            # Zero-rate sources present (or no sources): the reference's
            # source-by-source accumulation, skipping dead sources.
            total = None
            weight = 0.0
            for src, load in loads.items():
                rps = load.rps
                if rps == 0.0:
                    continue
                rt_src = eq_rt + self._lat_col(src)
                f = np.minimum(np.maximum(1.0 - (rt_src - rt0) / denom,
                                          0.0), 1.0)
                total = f * rps if total is None else total + f * rps
                weight += rps
            sla = total / weight if weight != 0.0 else np.ones(n)

        # Migration blackout haircut and penalty, from cached columns
        # (copied only to zero out the stay-put host).
        migration_s = self._zeros
        penalty = self._zeros
        if request.current_pm is not None:
            migration_s, penalty, haircut = self._mig_cols(
                request.current_location, vm.image_size_mb)
            cur = batch.index.get(request.current_pm)
            if cur is not None:
                migration_s = migration_s.copy()
                migration_s[cur] = 0.0
                penalty = penalty.copy()
                penalty[cur] = 0.0
                haircut = haircut.copy()
                haircut[cur] = 1.0
            sla = sla * haircut
        revenue = contract.price_eur_per_hour * self._hours * sla

        # Marginal energy: watts-before is cached; only the tentative
        # after-state depends on this VM.
        cpu_after = np.asarray(
            self._pm_fn(batch.committed_count + 1,
                        batch.committed_cpu_sum + used_cpu), dtype=float)
        if len(batch.power_groups) == 1:
            model = batch.power_groups[0][0]
            watts_after = np.asarray(model.facility_watts(
                np.minimum(cpu_after, batch.cap_cpu)), dtype=float)
        else:
            watts_after = np.empty(n)
            for model, ix in batch.power_groups:
                watts_after[ix] = model.facility_watts(
                    np.minimum(cpu_after[ix], batch.cap_cpu[ix]))
        energy = (np.maximum(0.0, watts_after - self._watts_before_run)
                  * self._energy_k)

        if self._unit_weights:
            # 1.0 * x == x exactly; skip the three no-op scalings.
            profit = revenue - energy - penalty
        else:
            w = problem.weights
            profit = (w.revenue * revenue - w.energy * energy
                      - w.migration * penalty)
        return BatchEvaluation(
            pm_ids=self._pm_ids, required=required,
            profit_eur=profit, revenue_eur=revenue, energy_cost_eur=energy,
            migration_penalty_eur=penalty, sla=sla, given_cpu=given_cpu,
            given_mem=given_mem, given_bw=given_bw, used_cpu=used_cpu,
            migration_seconds=migration_s)


def score_candidates(problem: SchedulingProblem, request: VMRequest,
                     hosts, required: Optional[Resources] = None
                     ) -> np.ndarray:
    """Profit of placing ``request`` on each candidate host (the batch API).

    Thin wrapper over :func:`evaluate_candidates` returning only the
    profit vector (EUR per interval, aligned with the batch's host order)
    that the schedulers argmax over.  Use :func:`evaluate_candidates`
    directly when the per-term breakdown (revenue / energy / migration /
    SLA / grants) is needed.
    """
    return evaluate_candidates(problem, request, hosts,
                               required=required).profit_eur


def evaluate_schedule(problem: SchedulingProblem,
                      assignment: Mapping[str, str]) -> float:
    """Total objective of a complete assignment ``{vm_id: pm_id}``.

    Requests are packed in the given assignment's problem order, mirroring
    what executing the schedule would grant.  Raises on VMs without an
    assignment (constraint 1).
    """
    missing = {r.vm_id for r in problem.requests} - set(assignment)
    if missing:
        raise ValueError(f"unassigned VMs: {sorted(missing)}")
    # Work on copies so scoring never mutates the problem.
    views = {h.pm_id: HostView(
        pm_id=h.pm_id, location=h.location, capacity=h.capacity,
        power_model=h.power_model,
        energy_price_eur_kwh=h.energy_price_eur_kwh,
        initially_on=h.initially_on, committed=dict(h.committed),
        committed_used_cpu=dict(h.committed_used_cpu))
        for h in problem.hosts}
    total = 0.0
    for request in problem.requests:
        host = views[assignment[request.vm_id]]
        ev = placement_profit(problem, request, host)
        host.commit(request.vm_id, ev.required, ev.used_cpu)
        total += ev.profit_eur
    return total


@dataclass(frozen=True)
class ScheduleViolation:
    """One broken hard constraint."""

    kind: str
    detail: str


def check_schedule(problem: SchedulingProblem,
                   assignment: Mapping[str, str]) -> List[ScheduleViolation]:
    """Verify Figure 3 constraints 1 and 2 for an assignment."""
    violations: List[ScheduleViolation] = []
    host_ids = {h.pm_id for h in problem.hosts}
    for request in problem.requests:
        pm_id = assignment.get(request.vm_id)
        if pm_id is None:
            violations.append(ScheduleViolation(
                "unassigned", f"VM {request.vm_id!r} has no host"))
        elif pm_id not in host_ids:
            violations.append(ScheduleViolation(
                "unknown-host", f"VM {request.vm_id!r} -> {pm_id!r}"))
    # Constraint 2 on *grants* holds by construction (the sharing model
    # never hands out more than capacity); what we can flag is demand
    # overcommit — hosts whose packed demand exceeds capacity and will
    # therefore throttle their VMs.
    views = {h.pm_id: HostView(
        pm_id=h.pm_id, location=h.location, capacity=h.capacity,
        power_model=h.power_model,
        energy_price_eur_kwh=h.energy_price_eur_kwh,
        initially_on=h.initially_on, committed=dict(h.committed),
        committed_used_cpu=dict(h.committed_used_cpu))
        for h in problem.hosts}
    for request in problem.requests:
        pm_id = assignment.get(request.vm_id)
        if pm_id not in views:
            continue
        host = views[pm_id]
        ev = placement_profit(problem, request, host)
        host.commit(request.vm_id, ev.required, ev.used_cpu)
    for host in views.values():
        if not host.used.fits_in(host.capacity, slack=1e-6):
            violations.append(ScheduleViolation(
                "overcommit",
                f"host {host.pm_id!r} demand {host.used} exceeds capacity "
                f"{host.capacity}"))
    return violations
