"""Ordered Descending Best-Fit scheduling (paper Algorithm 1).

MILP solvers need minutes for tens of jobs (the paper cites GUROBI taking
"several minutes to schedule 10 jobs among 40 candidate hosts"), so the paper
uses the classic Ordered Best-Fit heuristic: sort VMs by decreasing demand,
then give each VM to the host where the *profit function* — SLA revenue minus
marginal energy minus migration penalty — is highest.

Three variants reproduce the paper's intra-DC comparison (Figure 4):

* **BF** — plain Best-Fit on last-round observed usage, optimizing power and
  latency only (:class:`~repro.core.estimators.ObservedEstimator`).
* **BF-OB** — same, but booking 2x the observed resources against load peaks.
* **BF-ML** — the learned models predict requirements and SLA for tentative
  placements (:class:`~repro.core.estimators.MLEstimator`).

:func:`build_problem` snapshots a :class:`~repro.sim.multidc.MultiDCSystem`
into a :class:`~repro.core.model.SchedulingProblem`;
:func:`make_bestfit_scheduler` adapts the whole pipeline to the engine's
scheduler callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..sim.engine import Scheduler
from ..sim.multidc import MultiDCSystem
from ..sim.machines import Resources
from ..workload.traces import WorkloadTrace
from .estimators import Estimator, MLEstimator, ObservedEstimator
from .model import (HostBatch, HostView, ObjectiveWeights,
                    PlacementEvaluation, SchedulingProblem, VMRequest,
                    evaluate_candidates, placement_profit)

__all__ = ["descending_best_fit", "build_problem",
           "make_bestfit_scheduler", "BestFitResult"]


@dataclass(frozen=True)
class BestFitResult:
    """Assignment plus per-VM evaluations (for analysis and tests)."""

    assignment: Dict[str, str]
    evaluations: Dict[str, PlacementEvaluation]
    order: List[str]

    @property
    def total_profit(self) -> float:
        return sum(ev.profit_eur for ev in self.evaluations.values())


def descending_best_fit(problem: SchedulingProblem,
                        min_gain_eur: float = 0.0,
                        batch: bool = True) -> BestFitResult:
    """Algorithm 1: order VMs by demand, best-profit host for each.

    The VM's current host (when present among candidates) is the baseline;
    another host is chosen only when it beats the baseline by
    ``min_gain_eur`` (migration hysteresis — the migration penalty inside
    the profit already discourages churn, the explicit margin guards
    against noise-driven flapping).

    With ``batch`` (the default) each VM is scored against all hosts in one
    vectorized :func:`~repro.core.model.evaluate_candidates` call over an
    incrementally updated :class:`~repro.core.model.HostBatch`; committing
    a VM refreshes only the chosen host's column.  ``batch=False`` runs the
    scalar reference loop — both produce the same assignments (the golden
    and differential tests pin this down).
    """
    if not problem.hosts:
        raise ValueError("no candidate hosts")
    # Pack into copies: scoring a round must not mutate the problem.
    hosts = [HostView(pm_id=h.pm_id, location=h.location,
                      capacity=h.capacity, power_model=h.power_model,
                      energy_price_eur_kwh=h.energy_price_eur_kwh,
                      initially_on=h.initially_on,
                      committed=dict(h.committed),
                      committed_used_cpu=dict(h.committed_used_cpu))
             for h in problem.hosts]
    est = problem.estimator
    # get_data / get_required_resources for every VM first.  Demands are
    # deliberately uncapped: overload must be visible as demand exceeding
    # any host, not silently truncated.
    required = {
        r.vm_id: est.required_resources(r.vm, r.aggregate_load,
                                        float("inf"))
        for r in problem.requests}
    # order_by_demand(vms, desc): dominant share against the largest host.
    ref = max(hosts, key=lambda h: h.capacity.cpu).capacity
    order = sorted(problem.requests,
                   key=lambda r: required[r.vm_id].dominant_share(ref),
                   reverse=True)
    if batch:
        return _best_fit_batch(problem, order, required, hosts,
                               min_gain_eur)
    return _best_fit_scalar(problem, order, required, hosts, min_gain_eur)


def _best_fit_batch(problem: SchedulingProblem,
                    order: Sequence[VMRequest],
                    required: Mapping[str, Resources],
                    hosts: List[HostView],
                    min_gain_eur: float) -> BestFitResult:
    """Vectorized packing loop: one score vector + argmax per VM.

    Reproduces the scalar loop's selection rule exactly: the running
    strict-``>`` maximum is the *first* host attaining the best score (ties
    keep the earlier host, as ``np.argmax`` does), and with a current host
    present the best challenger wins only when it beats the stay-put
    baseline by ``min_gain_eur``.
    """
    host_batch = HostBatch.of(hosts)
    assignment: Dict[str, str] = {}
    evaluations: Dict[str, PlacementEvaluation] = {}
    for request in order:
        req = required[request.vm_id]
        evs = evaluate_candidates(problem, request, host_batch,
                                  required=req)
        scores = evs.profit_eur
        cur = (host_batch.index.get(request.current_pm)
               if request.current_pm is not None else None)
        if cur is None:
            choice = int(np.argmax(scores))
        else:
            others = scores.copy()
            others[cur] = -np.inf
            challenger = int(np.argmax(others))
            # Scalar bar: beat max(baseline + min_gain, baseline) — the
            # running best starts at the baseline, so a negative min_gain
            # never lowers the bar below staying put.
            bar = max(scores[cur] + min_gain_eur, scores[cur])
            if others[challenger] > bar:
                choice = challenger
            else:
                choice = cur
        host_batch.commit(choice, request.vm_id, evs.required,
                          float(evs.used_cpu[choice]))
        assignment[request.vm_id] = host_batch.hosts[choice].pm_id
        evaluations[request.vm_id] = evs.evaluation(choice)
    return BestFitResult(assignment=assignment, evaluations=evaluations,
                         order=[r.vm_id for r in order])


def _best_fit_scalar(problem: SchedulingProblem,
                     order: Sequence[VMRequest],
                     required: Mapping[str, Resources],
                     hosts: List[HostView],
                     min_gain_eur: float) -> BestFitResult:
    """Reference packing loop: one scalar ``placement_profit`` per host."""
    assignment: Dict[str, str] = {}
    evaluations: Dict[str, PlacementEvaluation] = {}
    for request in order:
        req = required[request.vm_id]
        best_host: Optional[HostView] = None
        best_ev: Optional[PlacementEvaluation] = None
        baseline = -np.inf
        # Baseline: staying put (when the current host is a candidate).
        if request.current_pm is not None:
            for host in hosts:
                if host.pm_id == request.current_pm:
                    ev = placement_profit(problem, request, host, required=req)
                    best_host, best_ev, baseline = host, ev, ev.profit_eur
                    break
        for host in hosts:
            if request.current_pm is not None and host.pm_id == request.current_pm:
                continue
            ev = placement_profit(problem, request, host, required=req)
            threshold = (baseline + min_gain_eur
                         if best_ev is not None else -np.inf)
            current_best = (best_ev.profit_eur
                            if best_ev is not None else -np.inf)
            if ev.profit_eur > max(threshold, current_best):
                best_host, best_ev = host, ev
        if best_host is None or best_ev is None:
            raise RuntimeError(
                f"no feasible host for VM {request.vm_id!r}")
        best_host.commit(request.vm_id, best_ev.required, best_ev.used_cpu)
        assignment[request.vm_id] = best_host.pm_id
        evaluations[request.vm_id] = best_ev
    return BestFitResult(assignment=assignment, evaluations=evaluations,
                         order=[r.vm_id for r in order])


def build_problem(system: MultiDCSystem, trace: WorkloadTrace, t: int,
                  estimator: Estimator,
                  scope_vms: Optional[Sequence[str]] = None,
                  scope_pms: Optional[Sequence[str]] = None,
                  weights: Optional[ObjectiveWeights] = None,
                  queue_lens: Optional[Mapping[str, float]] = None,
                  loads_override: Optional[Mapping[str, Mapping[str, object]]] = None
                  ) -> SchedulingProblem:
    """Snapshot one scheduling round from live system state.

    ``scope_vms`` limits which VMs are rescheduled (default: all placed
    VMs); ``scope_pms`` limits candidate hosts (default: every PM).  VMs in
    scope are released from the host views; out-of-scope VMs stay committed
    and constrain free capacity — this is the narrow interface the
    hierarchical scheduler builds on.
    """
    placement = system.placement()
    # Default scope is *all* VMs, not just placed ones: orphans from host
    # failures must be re-placed on the next round.
    vm_ids = (list(scope_vms) if scope_vms is not None
              else sorted(system.vms))
    queue_lens = queue_lens or {}
    requests: List[VMRequest] = []
    for vm_id in vm_ids:
        vm = system.vms[vm_id]
        pm_id = placement.get(vm_id)
        if loads_override is not None and vm_id in loads_override:
            loads = dict(loads_override[vm_id])
        else:
            loads = trace.load_at(vm_id, t)
        requests.append(VMRequest(
            vm=vm, contract=system.contracts[vm_id],
            loads=loads,
            current_pm=pm_id,
            current_location=(system.dc_of_pm(pm_id).location
                              if pm_id else None),
            queue_len=float(queue_lens.get(vm_id, 0.0))))
    scope = set(vm_ids)
    hosts: List[HostView] = []
    wanted = set(scope_pms) if scope_pms is not None else None
    for dc in system.datacenters:
        for pm in dc.pms:
            if wanted is not None and pm.pm_id not in wanted:
                continue
            if pm.failed:
                continue
            hosts.append(HostView.of(pm, dc.location,
                                     dc.energy_price_eur_kwh,
                                     exclude_vms=tuple(scope),
                                     demands=system.last_demands))
    return SchedulingProblem(
        requests=requests, hosts=hosts, network=system.network,
        prices=system.prices, estimator=estimator,
        interval_s=trace.interval_s,
        weights=weights or ObjectiveWeights(),
        auto_power_off=system.auto_power_off)


def make_bestfit_scheduler(estimator: Estimator,
                           weights: Optional[ObjectiveWeights] = None,
                           min_gain_eur: float = 0.0,
                           scope_pms: Optional[Sequence[str]] = None,
                           forecaster=None) -> Scheduler:
    """Adapt Best-Fit over a fixed estimator to the engine's interface.

    With a :class:`repro.workload.forecast.LoadForecaster`, the scheduler
    plans round ``t`` on *forecast* load built only from completed
    intervals (< t), instead of the harness default of handing it the
    current interval's measured load.
    """

    def schedule(system: MultiDCSystem, trace: WorkloadTrace,
                 t: int) -> Dict[str, str]:
        if isinstance(estimator, ObservedEstimator):
            estimator.refresh()
        loads_override = None
        if forecaster is not None:
            from ..workload.forecast import forecast_loads
            # Catch up on every completed interval (robust to
            # schedule_every > 1), then forecast t.
            while forecaster.n_observed < t:
                forecaster.observe_interval(trace, forecaster.n_observed)
            loads_override = forecast_loads(forecaster, trace,
                                            vm_ids=sorted(system.vms))
        problem = build_problem(system, trace, t, estimator,
                                scope_pms=scope_pms, weights=weights,
                                loads_override=loads_override)
        if not problem.requests:
            return {}
        return descending_best_fit(problem,
                                   min_gain_eur=min_gain_eur).assignment

    return schedule
