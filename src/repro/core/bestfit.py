"""Ordered Descending Best-Fit scheduling (paper Algorithm 1).

MILP solvers need minutes for tens of jobs (the paper cites GUROBI taking
"several minutes to schedule 10 jobs among 40 candidate hosts"), so the paper
uses the classic Ordered Best-Fit heuristic: sort VMs by decreasing demand,
then give each VM to the host where the *profit function* — SLA revenue minus
marginal energy minus migration penalty — is highest.

Three variants reproduce the paper's intra-DC comparison (Figure 4):

* **BF** — plain Best-Fit on last-round observed usage, optimizing power and
  latency only (:class:`~repro.core.estimators.ObservedEstimator`).
* **BF-OB** — same, but booking 2x the observed resources against load peaks.
* **BF-ML** — the learned models predict requirements and SLA for tentative
  placements (:class:`~repro.core.estimators.MLEstimator`).

:func:`build_problem` snapshots a :class:`~repro.sim.multidc.MultiDCSystem`
into a :class:`~repro.core.model.SchedulingProblem`;
:func:`make_bestfit_scheduler` adapts the whole pipeline to the engine's
scheduler callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

import numpy as np

from ..sim.demand import LoadVector
from ..sim.engine import Scheduler
from ..sim.fleet import FleetState
from ..sim.multidc import MultiDCSystem
from ..sim.machines import Resources
from ..workload.traces import WorkloadTrace
from .estimators import Estimator, MLEstimator, ObservedEstimator
from .model import (BatchEvaluation, HostBatch, HostView, ObjectiveWeights,
                    PlacementEvaluation, RoundScorer, SchedulingProblem,
                    VMRequest, evaluate_candidates, placement_profit)

__all__ = ["descending_best_fit", "build_problem", "SchedulingRound",
           "make_bestfit_scheduler", "BestFitResult"]


@dataclass(frozen=True)
class BestFitResult:
    """Assignment plus per-VM evaluations (for analysis and tests)."""

    assignment: Dict[str, str]
    evaluations: Dict[str, PlacementEvaluation]
    order: List[str]

    @property
    def total_profit(self) -> float:
        return sum(ev.profit_eur for ev in self.evaluations.values())


def descending_best_fit(problem: SchedulingProblem,
                        min_gain_eur: float = 0.0,
                        batch: bool = True) -> BestFitResult:
    """Algorithm 1: order VMs by demand, best-profit host for each.

    The VM's current host (when present among candidates) is the baseline;
    another host is chosen only when it beats the baseline by
    ``min_gain_eur`` (migration hysteresis — the migration penalty inside
    the profit already discourages churn, the explicit margin guards
    against noise-driven flapping).

    With ``batch`` (the default) each VM is scored against all hosts in one
    vectorized :func:`~repro.core.model.evaluate_candidates` call over an
    incrementally updated :class:`~repro.core.model.HostBatch`; committing
    a VM refreshes only the chosen host's column.  ``batch=False`` runs the
    scalar reference loop — both produce the same assignments (the golden
    and differential tests pin this down).
    """
    if not problem.hosts:
        # An empty shard (zero-PM DC, or every host failed) with nothing
        # to place is a clean no-op round; only an actual request with no
        # candidate host anywhere is an error.
        if not problem.requests:
            return BestFitResult(assignment={}, evaluations={}, order=[])
        raise ValueError("no candidate hosts")
    # Pack into copies: scoring a round must not mutate the problem.
    hosts = [HostView(pm_id=h.pm_id, location=h.location,
                      capacity=h.capacity, power_model=h.power_model,
                      energy_price_eur_kwh=h.energy_price_eur_kwh,
                      initially_on=h.initially_on,
                      committed=dict(h.committed),
                      committed_used_cpu=dict(h.committed_used_cpu))
             for h in problem.hosts]
    est = problem.estimator
    # get_data / get_required_resources for every VM first.  Demands are
    # deliberately uncapped: overload must be visible as demand exceeding
    # any host, not silently truncated.
    required = {
        r.vm_id: est.required_resources(r.vm, r.aggregate_load,
                                        float("inf"))
        for r in problem.requests}
    # order_by_demand(vms, desc): dominant share against the largest host.
    ref = max(hosts, key=lambda h: h.capacity.cpu).capacity
    order = sorted(problem.requests,
                   key=lambda r: required[r.vm_id].dominant_share(ref),
                   reverse=True)
    if batch:
        return _best_fit_batch(problem, order, required, hosts,
                               min_gain_eur)
    return _best_fit_scalar(problem, order, required, hosts, min_gain_eur)


def _pack_batch(order: Sequence[VMRequest],
                required: Mapping[str, Resources],
                host_batch: HostBatch,
                min_gain_eur: float,
                evaluate: Callable[[VMRequest, Resources], "BatchEvaluation"],
                commit: Callable[[int, str, Resources, float], None]
                ) -> BestFitResult:
    """The batch packing loop: one score vector + argmax per VM.

    Reproduces the scalar loop's selection rule exactly: the running
    strict-``>`` maximum is the *first* host attaining the best score (ties
    keep the earlier host, as ``np.argmax`` does), and with a current host
    present the best challenger wins only when it beats the stay-put
    baseline by ``min_gain_eur``.  ``evaluate`` and ``commit`` plug in the
    scorer: :func:`evaluate_candidates` over the batch (the default path)
    or a :class:`~repro.core.model.RoundScorer` (the round-snapshot path).
    """
    assignment: Dict[str, str] = {}
    evaluations: Dict[str, PlacementEvaluation] = {}
    for request in order:
        req = required[request.vm_id]
        evs = evaluate(request, req)
        scores = evs.profit_eur
        cur = (host_batch.index.get(request.current_pm)
               if request.current_pm is not None else None)
        if cur is None:
            choice = int(np.argmax(scores))
            # Scalar parity: a host only becomes "best" on a strict
            # improvement over -inf, so an all--inf score vector (no
            # feasible host) must raise, not silently pick host 0.
            if scores[choice] == -np.inf:
                raise RuntimeError(
                    f"no feasible host for VM {request.vm_id!r}")
        else:
            others = scores.copy()
            others[cur] = -np.inf
            challenger = int(np.argmax(others))
            # Scalar bar: beat max(baseline + min_gain, baseline) — the
            # running best starts at the baseline, so a negative min_gain
            # never lowers the bar below staying put.
            bar = max(scores[cur] + min_gain_eur, scores[cur])
            if others[challenger] > bar:
                choice = challenger
            else:
                choice = cur
        commit(choice, request.vm_id, evs.required,
               float(evs.used_cpu[choice]))
        assignment[request.vm_id] = host_batch.hosts[choice].pm_id
        evaluations[request.vm_id] = evs.evaluation(choice)
    return BestFitResult(assignment=assignment, evaluations=evaluations,
                         order=[r.vm_id for r in order])


def _best_fit_batch(problem: SchedulingProblem,
                    order: Sequence[VMRequest],
                    required: Mapping[str, Resources],
                    hosts: List[HostView],
                    min_gain_eur: float) -> BestFitResult:
    """Vectorized packing via :func:`evaluate_candidates` over a batch."""
    host_batch = HostBatch.of(hosts)

    def evaluate(request, req):
        return evaluate_candidates(problem, request, host_batch,
                                   required=req)

    return _pack_batch(order, required, host_batch, min_gain_eur,
                       evaluate, host_batch.commit)


def _best_fit_scalar(problem: SchedulingProblem,
                     order: Sequence[VMRequest],
                     required: Mapping[str, Resources],
                     hosts: List[HostView],
                     min_gain_eur: float) -> BestFitResult:
    """Reference packing loop: one scalar ``placement_profit`` per host."""
    assignment: Dict[str, str] = {}
    evaluations: Dict[str, PlacementEvaluation] = {}
    for request in order:
        req = required[request.vm_id]
        best_host: Optional[HostView] = None
        best_ev: Optional[PlacementEvaluation] = None
        baseline = -np.inf
        # Baseline: staying put (when the current host is a candidate).
        if request.current_pm is not None:
            for host in hosts:
                if host.pm_id == request.current_pm:
                    ev = placement_profit(problem, request, host, required=req)
                    best_host, best_ev, baseline = host, ev, ev.profit_eur
                    break
        for host in hosts:
            if request.current_pm is not None and host.pm_id == request.current_pm:
                continue
            ev = placement_profit(problem, request, host, required=req)
            threshold = (baseline + min_gain_eur
                         if best_ev is not None else -np.inf)
            current_best = (best_ev.profit_eur
                            if best_ev is not None else -np.inf)
            if ev.profit_eur > max(threshold, current_best):
                best_host, best_ev = host, ev
        if best_host is None or best_ev is None:
            raise RuntimeError(
                f"no feasible host for VM {request.vm_id!r}")
        best_host.commit(request.vm_id, best_ev.required, best_ev.used_cpu)
        assignment[request.vm_id] = best_host.pm_id
        evaluations[request.vm_id] = best_ev
    return BestFitResult(assignment=assignment, evaluations=evaluations,
                         order=[r.vm_id for r in order])


def build_problem(system: MultiDCSystem, trace: WorkloadTrace, t: int,
                  estimator: Estimator,
                  scope_vms: Optional[Sequence[str]] = None,
                  scope_pms: Optional[Sequence[str]] = None,
                  weights: Optional[ObjectiveWeights] = None,
                  queue_lens: Optional[Mapping[str, float]] = None,
                  loads_override: Optional[Mapping[str, Mapping[str, object]]] = None
                  ) -> SchedulingProblem:
    """Snapshot one scheduling round from live system state.

    ``scope_vms`` limits which VMs are rescheduled (default: all placed
    VMs); ``scope_pms`` limits candidate hosts (default: every PM).  VMs in
    scope are released from the host views; out-of-scope VMs stay committed
    and constrain free capacity — this is the narrow interface the
    hierarchical scheduler builds on.

    VMs without any trace series (and no ``loads_override`` entry) are
    skipped, exactly like both stepping paths skip them: an untraced VM has
    no load to plan for, so it stays put and keeps constraining the host
    views as an out-of-scope resident.
    """
    placement = system.placement()
    # Default scope is *all* VMs, not just placed ones: orphans from host
    # failures must be re-placed on the next round.
    vm_ids = (list(scope_vms) if scope_vms is not None
              else sorted(system.vms))
    vm_ids = [vm_id for vm_id in vm_ids
              if trace.has_vm(vm_id)
              or (loads_override is not None and vm_id in loads_override)]
    queue_lens = queue_lens or {}
    requests: List[VMRequest] = []
    for vm_id in vm_ids:
        vm = system.vms[vm_id]
        pm_id = placement.get(vm_id)
        if loads_override is not None and vm_id in loads_override:
            loads = dict(loads_override[vm_id])
        else:
            loads = trace.load_at(vm_id, t)
        requests.append(VMRequest(
            vm=vm, contract=system.contracts[vm_id],
            loads=loads,
            current_pm=pm_id,
            current_location=(system.dc_of_pm(pm_id).location
                              if pm_id else None),
            queue_len=float(queue_lens.get(vm_id, 0.0))))
    scope = set(vm_ids)
    hosts: List[HostView] = []
    wanted = set(scope_pms) if scope_pms is not None else None
    for dc in system.datacenters:
        for pm in dc.pms:
            if wanted is not None and pm.pm_id not in wanted:
                continue
            if pm.failed:
                continue
            hosts.append(HostView.of(pm, dc.location,
                                     dc.energy_price_eur_kwh,
                                     exclude_vms=tuple(scope),
                                     demands=system.last_demands))
    return SchedulingProblem(
        requests=requests, hosts=hosts, network=system.network,
        prices=system.prices, estimator=estimator,
        interval_s=trace.interval_s,
        weights=weights or ObjectiveWeights(),
        auto_power_off=system.auto_power_off)


class SchedulingRound:
    """Array-backed snapshot of one scheduling round (system, trace, t).

    The fast twin of per-round :func:`build_problem`.  Where the reference
    re-materializes every :class:`VMRequest` and :class:`HostView` from
    live Python objects *per problem* — the hierarchical scheduler builds
    one problem per DC plus a global one, each walking the whole system —
    a ``SchedulingRound`` snapshots the round once, straight from the
    arrays the stepping path already has:

    * requests are built from the cached
      :class:`~repro.sim.fleet.FleetState` (per-source loads and
      aggregates come from the stacked series rows, O(own sources) per
      VM) and shared by every problem of the round;
    * host views are sliced from a per-round base (one walk over the live
      PMs), releasing only the VMs in each problem's scope;
    * per-VM demand estimates come from one vectorized
      ``required_resources_batch`` call when the estimator supports it;
    * packing runs the shared loop over a
      :class:`~repro.core.model.RoundScorer`, which hoists latency,
      migration and power lookups to problem scope.

    The object-walking :func:`build_problem` + :func:`descending_best_fit`
    pair stays as the executable reference: for any scope,
    :meth:`problem` materializes the same :class:`SchedulingProblem` (same
    requests, same host views) and :meth:`best_fit` returns identical
    assignments with evaluations equal within 1e-9 (bit-equal in
    practice; ``tests/core/test_round_snapshot.py`` pins both).
    Estimators without the batch interface transparently fall back to the
    reference scorer.
    """

    def __init__(self, system: MultiDCSystem, trace: WorkloadTrace, t: int,
                 estimator: Estimator,
                 weights: Optional[ObjectiveWeights] = None,
                 queue_lens: Optional[Mapping[str, float]] = None,
                 loads_override: Optional[Mapping[str, Mapping[str, object]]]
                 = None,
                 scope_pms: Optional[Sequence[str]] = None,
                 batch_vms: Optional[Sequence[str]] = None) -> None:
        """Snapshot one round.

        ``scope_pms`` restricts the snapshot itself to those PMs: the host
        base and the placement view only cover them, so construction is
        O(scope) instead of O(fleet) — the shard-local round the sharded
        hierarchical scheduler builds per DC.  A VM hosted outside the
        scope appears unplaced to this round; callers must keep scoped
        VM sets consistent (the hierarchical phases do by construction).
        ``batch_vms`` limits the vectorized demand prefetch to those VMs
        (demand estimation is elementwise, so restricting the batch
        returns bit-identical per-VM values); others fall back to scalar
        estimation on first use.
        """
        self.system = system
        self.trace = trace
        self.t = t
        self.estimator = estimator
        self.weights = weights or ObjectiveWeights()
        self.queue_lens = dict(queue_lens) if queue_lens else {}
        self.loads_override = loads_override
        self.fleet = FleetState.for_system(system, trace)
        self.scope_pms = (frozenset(scope_pms)
                          if scope_pms is not None else None)
        self._batch_vms = (frozenset(batch_vms)
                           if batch_vms is not None else None)
        if scope_pms is None:
            self.placement = system.placement()
        else:
            placement: Dict[str, str] = {}
            for pm_id in scope_pms:
                pm = system.pm(pm_id)  # raises on unknown host
                for vm_id in pm.vm_ids:
                    placement[vm_id] = pm_id
            self.placement = placement
        # Per-round host base: one walk over the live PMs, committed
        # demands resolved exactly like HostView.of (last known demand,
        # falling back to the recorded grant).
        demands = system.last_demands
        wanted = self.scope_pms
        self._host_base: List[tuple] = []
        for dc in system.datacenters:
            for pm in dc.pms:
                if wanted is not None and pm.pm_id not in wanted:
                    continue
                if pm.failed:
                    continue
                committed = []
                for vm_id, grant in pm.granted.items():
                    demand = demands.get(vm_id, grant)
                    committed.append((vm_id, demand,
                                      min(demand.cpu, grant.cpu)))
                self._host_base.append(
                    (pm.pm_id, dc.location, dc.energy_price_eur_kwh,
                     pm.capacity, pm.power_model, pm.on, committed))
        self._requests: Dict[str, VMRequest] = {}
        self._aggs: Dict[str, LoadVector] = {}
        self._required: Dict[str, Resources] = {}
        self._required_batched = False
        # Shared nothing-released scorer for pack_each (built lazily).
        self._base_ready = False
        self._base: Optional[Tuple[HostBatch, RoundScorer]] = None

    # -- request construction (once per round, shared across problems) -------
    def _request(self, vm_id: str) -> VMRequest:
        request = self._requests.get(vm_id)
        if request is None:
            system = self.system
            if (self.loads_override is not None
                    and vm_id in self.loads_override):
                loads = dict(self.loads_override[vm_id])
                agg = LoadVector.combine(loads.values())
            else:
                loads = self.fleet.loads_at(vm_id, self.t)
                agg = self.fleet.aggregate_load_at(vm_id, self.t)
            pm_id = self.placement.get(vm_id)
            request = VMRequest(
                vm=system.vms[vm_id], contract=system.contracts[vm_id],
                loads=loads, current_pm=pm_id,
                current_location=(system.dc_of_pm(pm_id).location
                                  if pm_id else None),
                queue_len=float(self.queue_lens.get(vm_id, 0.0)))
            self._requests[vm_id] = request
            self._aggs[vm_id] = agg
        return request

    def _required_for(self, requests: Sequence[VMRequest]
                      ) -> Dict[str, Resources]:
        """Demand estimates for the given requests, batched when possible.

        The vectorized path estimates every traced VM of the round in one
        ``required_resources_batch`` call (amortized over all problems);
        VMs with overridden loads and estimators without the batch method
        fall back to the scalar call on the same aggregate load.
        """
        if not self._required_batched:
            self._required_batched = True
            fn = getattr(self.estimator, "required_resources_batch", None)
            if fn is not None:
                fleet = self.fleet
                overridden = (set(self.loads_override)
                              if self.loads_override is not None else ())
                hinted = self._batch_vms
                vm_ids = [v for v in fleet.traced_ids
                          if v not in overridden
                          and (hinted is None or v in hinted)]
                if vm_ids:
                    rows = [fleet.vm_index[v] for v in vm_ids]
                    rps, bpr, cpr = fleet.aggregate_columns(self.t)
                    vms = [self.system.vms[v] for v in vm_ids]
                    out = fn(vms, rps[rows], bpr[rows], cpr[rows],
                             float("inf"))
                    if out is not None:
                        cpu, mem, bw = out
                        for j, v in enumerate(vm_ids):
                            self._required[v] = Resources(
                                cpu=float(cpu[j]), mem=float(mem[j]),
                                bw=float(bw[j]))
        required: Dict[str, Resources] = {}
        for request in requests:
            vm_id = request.vm_id
            req = self._required.get(vm_id)
            if req is None:
                # Requests this round did not build (pack() accepts any
                # problem) have no cached aggregate; derive it like the
                # reference does.
                agg = self._aggs.get(vm_id)
                if agg is None:
                    agg = request.aggregate_load
                req = self.estimator.required_resources(
                    request.vm, agg, float("inf"))
                self._required[vm_id] = req
            required[vm_id] = req
        return required

    # -- problem sub-views --------------------------------------------------
    def problem(self, scope_vms: Optional[Sequence[str]] = None,
                scope_pms: Optional[Sequence[str]] = None
                ) -> SchedulingProblem:
        """The same :class:`SchedulingProblem` :func:`build_problem` builds.

        Semantics match the reference exactly — default scope is all VMs,
        untraced VMs without a loads override are skipped, failed PMs are
        excluded, in-scope VMs are released from the host views — but
        requests and host bases are reused across the round's problems.
        """
        vm_ids = (list(scope_vms) if scope_vms is not None
                  else sorted(self.system.vms))
        traced = self.fleet.traced_set
        overridden = (self.loads_override
                      if self.loads_override is not None else ())
        vm_ids = [v for v in vm_ids if v in traced or v in overridden]
        requests = [self._request(v) for v in vm_ids]
        scope = set(vm_ids)
        wanted = set(scope_pms) if scope_pms is not None else None
        hosts: List[HostView] = []
        for (pm_id, location, price, capacity, power_model, on,
             committed) in self._host_base:
            if wanted is not None and pm_id not in wanted:
                continue
            hosts.append(HostView(
                pm_id=pm_id, location=location, capacity=capacity,
                power_model=power_model, energy_price_eur_kwh=price,
                initially_on=on,
                committed={v: d for v, d, _u in committed
                           if v not in scope},
                committed_used_cpu={v: u for v, d, u in committed
                                    if v not in scope}))
        return SchedulingProblem(
            requests=requests, hosts=hosts, network=self.system.network,
            prices=self.system.prices, estimator=self.estimator,
            interval_s=self.trace.interval_s, weights=self.weights,
            auto_power_off=self.system.auto_power_off)

    # -- packing --------------------------------------------------------------
    def pack(self, problem: SchedulingProblem,
             min_gain_eur: float = 0.0) -> BestFitResult:
        """Descending Best-Fit over a round problem via the fast scorer.

        Same contract as :func:`descending_best_fit` (which remains the
        reference, and the fallback for estimators without the batch
        interface): the problem is never mutated, the VM order and the
        selection rule are identical.
        """
        if not problem.hosts:
            # Mirror descending_best_fit: an empty shard with nothing to
            # place is a clean no-op round.
            if not problem.requests:
                return BestFitResult(assignment={}, evaluations={},
                                     order=[])
            raise ValueError("no candidate hosts")
        # No defensive host copies needed: the RoundScorer's commits are
        # array-native (batch columns only), so the problem's host views
        # are never mutated — and the fallback path copies internally.
        # Probe the scorer before estimating demands, so the fallback
        # does not pay for estimates the reference recomputes anyway.
        host_batch = HostBatch.of(problem.hosts)
        try:
            scorer = RoundScorer(problem, host_batch)
        except ValueError:
            # Duck-typed estimator without the batch interface: the
            # reference path loops scalars transparently.
            return descending_best_fit(problem, min_gain_eur=min_gain_eur)
        required = self._required_for(problem.requests)
        ref = max(problem.hosts, key=lambda h: h.capacity.cpu).capacity
        order = sorted(problem.requests,
                       key=lambda r: required[r.vm_id].dominant_share(ref),
                       reverse=True)
        aggs = self._aggs

        def evaluate(request, req):
            return scorer.evaluate(request, req,
                                   agg=aggs.get(request.vm_id))

        return _pack_batch(order, required, host_batch, min_gain_eur,
                           evaluate, scorer.commit)

    def best_fit(self, scope_vms: Optional[Sequence[str]] = None,
                 scope_pms: Optional[Sequence[str]] = None,
                 min_gain_eur: float = 0.0) -> BestFitResult:
        """:meth:`problem` + :meth:`pack` in one call."""
        return self.pack(self.problem(scope_vms, scope_pms),
                         min_gain_eur=min_gain_eur)

    # -- per-VM placement queries (the warm-serving entry point) --------------
    def _base_scorer(self) -> Optional[Tuple[HostBatch, "RoundScorer"]]:
        """The shared nothing-released (batch, scorer) pair, built once.

        ``None`` when the estimator lacks the batch interface — callers
        fall back to the per-problem reference path.
        """
        if not self._base_ready:
            self._base_ready = True
            problem = self.problem(scope_vms=[])
            if problem.hosts:
                host_batch = HostBatch.of(problem.hosts)
                try:
                    self._base = (host_batch,
                                  RoundScorer(problem, host_batch))
                except ValueError:
                    self._base = None
        return self._base

    def pack_each(self, vm_ids: Sequence[str],
                  min_gain_eur: float = 0.0) -> Dict[str, BestFitResult]:
        """Pack each VM as its own single-VM problem, sharing one scorer.

        Bit-identical, per VM, to
        ``self.pack(self.problem(scope_vms=[vm_id]), min_gain_eur)`` —
        the placement-query entry point the service layer batches on.
        Where per-query packing pays a fresh problem build, a
        ``HostBatch`` walk and two whole-batch estimator passes each
        time, this shares one nothing-released scorer across the whole
        query set and releases/restores exactly the queried VM's host
        column per query
        (:meth:`~repro.core.model.RoundScorer.evaluate_released`).
        Untraced VMs (no loads, nothing to place) get an empty result,
        mirroring the empty problem the per-problem path would build.
        """
        base = self._base_scorer()
        if base is None:
            # Estimator without the batch interface: reference path,
            # one problem per query.
            return {vm_id: self.pack(self.problem(scope_vms=[vm_id]),
                                     min_gain_eur=min_gain_eur)
                    for vm_id in vm_ids}
        host_batch, scorer = base
        traced = self.fleet.traced_set
        overridden = (self.loads_override
                      if self.loads_override is not None else ())
        results: Dict[str, BestFitResult] = {}

        def evaluate(request, req):
            return scorer.evaluate_released(
                request, req, agg=self._aggs.get(request.vm_id))

        def no_commit(i, vm_id, res, used_cpu):
            # A single-VM problem commits after its only evaluation;
            # the result is already determined, so the shared batch
            # must stay untouched.
            return None

        for vm_id in vm_ids:
            if vm_id not in traced and vm_id not in overridden:
                results[vm_id] = BestFitResult(assignment={},
                                               evaluations={}, order=[])
                continue
            request = self._request(vm_id)
            required = self._required_for([request])
            results[vm_id] = _pack_batch([request], required, host_batch,
                                         min_gain_eur, evaluate,
                                         no_commit)
        return results


def make_bestfit_scheduler(estimator: Estimator,
                           weights: Optional[ObjectiveWeights] = None,
                           min_gain_eur: float = 0.0,
                           scope_pms: Optional[Sequence[str]] = None,
                           forecaster=None,
                           use_round_snapshot: bool = True) -> Scheduler:
    """Adapt Best-Fit over a fixed estimator to the engine's interface.

    With a :class:`repro.workload.forecast.LoadForecaster`, the scheduler
    plans round ``t`` on *forecast* load built only from completed
    intervals (< t), instead of the harness default of handing it the
    current interval's measured load.

    ``use_round_snapshot`` (the default) builds each round through the
    array-backed :class:`SchedulingRound`; ``False`` keeps the
    object-walking :func:`build_problem` reference path.  Both produce
    identical assignments (differential tests pin this).
    """

    def schedule(system: MultiDCSystem, trace: WorkloadTrace,
                 t: int) -> Dict[str, str]:
        if isinstance(estimator, ObservedEstimator):
            estimator.refresh()
        loads_override = None
        if forecaster is not None:
            from ..workload.forecast import forecast_loads
            # Catch up on every completed interval (robust to
            # schedule_every > 1), then forecast t.
            while forecaster.n_observed < t:
                forecaster.observe_interval(trace, forecaster.n_observed)
            loads_override = forecast_loads(forecaster, trace,
                                            vm_ids=sorted(system.vms))
        if use_round_snapshot:
            round_ = SchedulingRound(system, trace, t, estimator,
                                     weights=weights,
                                     loads_override=loads_override)
            problem = round_.problem(scope_pms=scope_pms)
            if not problem.requests:
                return {}
            return round_.pack(problem,
                               min_gain_eur=min_gain_eur).assignment
        problem = build_problem(system, trace, t, estimator,
                                scope_pms=scope_pms, weights=weights,
                                loads_override=loads_override)
        if not problem.requests:
            return {}
        return descending_best_fit(problem,
                                   min_gain_eur=min_gain_eur).assignment

    return schedule
