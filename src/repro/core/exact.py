"""Exact schedule optimization by branch-and-bound.

The paper's earlier work solved the placement program with a MILP solver and
found it infeasible at scale (minutes for 10 jobs x 40 hosts), motivating
Best-Fit.  For *small* instances an exact solver is still valuable: it
measures the heuristic's optimality gap (our ablation A1) and anchors tests.

The search enumerates host assignments per VM in demand order, pruning with
an admissible bound: each unassigned VM can at best earn its full revenue at
zero cost, so ``value + sum(max_revenue of remaining) <= best`` cuts the
branch.  Worst case is O(hosts^VMs); keep instances small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .model import (HostView, PlacementEvaluation, SchedulingProblem,
                    placement_profit)

__all__ = ["ExactResult", "exact_schedule"]


@dataclass(frozen=True)
class ExactResult:
    """Optimal assignment and objective, plus search statistics."""

    assignment: Dict[str, str]
    value_eur: float
    nodes_explored: int
    nodes_pruned: int


def exact_schedule(problem: SchedulingProblem,
                   max_nodes: int = 2_000_000) -> ExactResult:
    """Branch-and-bound over complete assignments.

    Raises :class:`RuntimeError` when ``max_nodes`` is exhausted before the
    search completes — a correctness guard, not a time limit: partial
    results would not be optimal.
    """
    if not problem.hosts:
        raise ValueError("no candidate hosts")
    est = problem.estimator
    ref = max(problem.hosts, key=lambda h: h.capacity.cpu).capacity
    required = {
        r.vm_id: est.required_resources(r.vm, r.aggregate_load,
                                        float("inf"))
        for r in problem.requests}
    requests = sorted(problem.requests,
                      key=lambda r: required[r.vm_id].dominant_share(ref),
                      reverse=True)
    hours = problem.interval_s / 3600.0
    # Admissible per-VM optimum: full revenue, zero energy/migration.
    ub = [problem.weights.revenue * r.contract.price_eur_per_hour * hours
          for r in requests]
    ub_suffix = np.concatenate([np.cumsum(ub[::-1])[::-1], [0.0]])

    views = [HostView(pm_id=h.pm_id, location=h.location,
                      capacity=h.capacity, power_model=h.power_model,
                      energy_price_eur_kwh=h.energy_price_eur_kwh,
                      initially_on=h.initially_on,
                      committed=dict(h.committed),
                      committed_used_cpu=dict(h.committed_used_cpu))
             for h in problem.hosts]

    best_value = -np.inf
    best_assignment: Dict[str, str] = {}
    assignment: Dict[str, str] = {}
    stats = {"explored": 0, "pruned": 0}

    def dfs(i: int, value: float) -> None:
        nonlocal best_value, best_assignment
        stats["explored"] += 1
        if stats["explored"] > max_nodes:
            raise RuntimeError(
                f"exact search exceeded {max_nodes} nodes; "
                "shrink the instance")
        if i == len(requests):
            if value > best_value:
                best_value = value
                best_assignment = dict(assignment)
            return
        if value + ub_suffix[i] <= best_value:
            stats["pruned"] += 1
            return
        request = requests[i]
        req = required[request.vm_id]
        # Order children best-first so good incumbents appear early.
        evals: List[Tuple[float, int, PlacementEvaluation]] = []
        for j, host in enumerate(views):
            ev = placement_profit(problem, request, host, required=req)
            evals.append((ev.profit_eur, j, ev))
        evals.sort(key=lambda e: e[0], reverse=True)
        for profit, j, ev in evals:
            host = views[j]
            host.commit(request.vm_id, ev.required, ev.used_cpu)
            assignment[request.vm_id] = host.pm_id
            dfs(i + 1, value + profit)
            del assignment[request.vm_id]
            host.release(request.vm_id)

    dfs(0, 0.0)
    return ExactResult(assignment=best_assignment, value_eur=float(best_value),
                       nodes_explored=stats["explored"],
                       nodes_pruned=stats["pruned"])
