"""The paper's core contribution: profit-driven multi-DC scheduling.

* :mod:`~repro.core.sla` — the RT->QoS contract function.
* :mod:`~repro.core.profit` — revenue / penalty / energy-cost objective terms.
* :mod:`~repro.core.model` — Figure 3 as evaluatable objects.
* :mod:`~repro.core.estimators` — observed vs learned vs oracle knowledge.
* :mod:`~repro.core.bestfit` — Algorithm 1 (Ordered Descending Best-Fit).
* :mod:`~repro.core.exact` — branch-and-bound optimality reference.
* :mod:`~repro.core.hierarchical` — the two-layer multi-DC scheduler.
* :mod:`~repro.core.policies` — ready-made scheduler presets.
"""

from .bestfit import (BestFitResult, SchedulingRound, build_problem,
                      descending_best_fit, make_bestfit_scheduler)
from .estimators import (Estimator, MLEstimator, ObservedEstimator,
                         OracleEstimator)
from .exact import ExactResult, exact_schedule
from .hierarchical import HierarchicalScheduler, RoundDiagnostics
from .model import (BatchEvaluation, HostBatch, HostView, ObjectiveWeights,
                    PlacementEvaluation, RoundScorer, SchedulingProblem,
                    ScheduleViolation, VMRequest, check_schedule,
                    evaluate_candidates, evaluate_schedule,
                    placement_profit, score_candidates)
from .online import OnlineLearningScheduler
from .policies import (bf_ml_scheduler, bf_overbook_scheduler, bf_scheduler,
                       exact_scheduler, follow_the_load_scheduler,
                       hierarchical_ml_scheduler, oracle_scheduler,
                       static_scheduler)
from .profit import (PriceBook, ProfitBreakdown, energy_cost_eur,
                     migration_penalty_eur, revenue_eur)
from .sla import PAPER_SLA, SLAContract, sla_fulfillment, weighted_sla

__all__ = [
    "BestFitResult", "SchedulingRound", "build_problem",
    "descending_best_fit", "make_bestfit_scheduler",
    "Estimator", "MLEstimator", "ObservedEstimator", "OracleEstimator",
    "ExactResult", "exact_schedule",
    "HierarchicalScheduler", "RoundDiagnostics",
    "BatchEvaluation", "HostBatch", "HostView", "ObjectiveWeights",
    "PlacementEvaluation", "RoundScorer", "SchedulingProblem",
    "ScheduleViolation",
    "VMRequest", "check_schedule", "evaluate_candidates",
    "evaluate_schedule", "placement_profit", "score_candidates",
    "OnlineLearningScheduler",
    "bf_ml_scheduler", "bf_overbook_scheduler", "bf_scheduler",
    "exact_scheduler",
    "follow_the_load_scheduler", "hierarchical_ml_scheduler",
    "oracle_scheduler", "static_scheduler",
    "PriceBook", "ProfitBreakdown", "energy_cost_eur",
    "migration_penalty_eur", "revenue_eur",
    "PAPER_SLA", "SLAContract", "sla_fulfillment", "weighted_sla",
]
