"""Estimators: where the decision maker's knowledge of the system comes from.

The paper's central comparison is between schedulers whose fit/QoS decisions
are driven by

* **observed** behaviour — "the resources [the VM] has used in the last 10
  minutes" (plain Best-Fit and the 2x-overbooking variant), and
* **learned models** — the Table I predictors anticipating requirements and
  SLA for *tentative* placements (ML-enhanced Best-Fit).

Both, plus a ground-truth oracle used for upper bounds and tests, implement
the same small interface consumed by :mod:`repro.core.model`:

``required_resources``
    What the VM needs for its expected load (Figure 3 constraint 5.1).
``pm_cpu``
    Host CPU for a tentative co-location, incl. hypervisor overhead.
``process_rt`` / ``process_sla``
    Production-side outcome of a tentative grant (constraints 6.1, 7);
    ``process_rt`` may return None when the estimator can only score SLA
    directly (the paper's preferred k-NN path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ml.calibration import RiskConfig
from ..ml.predictors import ModelSet
from ..sim.demand import DemandModel, LoadVector
from ..sim.machines import Resources, VirtualMachine
from ..sim.monitor import Monitor
from ..sim.rtmodel import ResponseTimeModel
from .sla import SLAContract

__all__ = ["Estimator", "OracleEstimator", "ObservedEstimator",
           "MLEstimator", "scalar_process_rt_batch",
           "scalar_process_sla_batch"]


def scalar_process_rt_batch(est, vm: VirtualMachine, load: LoadVector,
                            required: Resources, given_cpu, given_mem,
                            given_bw,
                            queue_len: float = 0.0) -> Optional[np.ndarray]:
    """Per-host ``process_rt`` via the scalar method (the shared fallback).

    Returns None as soon as the estimator declines an RT (direct-SLA
    estimators), mirroring the scalar scorer's dispatch.
    """
    out = []
    for gc, gm, gb in zip(np.asarray(given_cpu, dtype=float),
                          np.asarray(given_mem, dtype=float),
                          np.asarray(given_bw, dtype=float)):
        rt = est.process_rt(vm, load, required,
                            Resources(cpu=float(gc), mem=float(gm),
                                      bw=float(gb)), queue_len=queue_len)
        if rt is None:
            return None
        out.append(float(rt))
    return np.asarray(out, dtype=float)


def scalar_process_sla_batch(est, vm: VirtualMachine, load: LoadVector,
                             required: Resources, given_cpu, given_mem,
                             given_bw, contract: SLAContract,
                             queue_len: float = 0.0) -> np.ndarray:
    """Per-host ``process_sla`` via the scalar method (the shared fallback)."""
    return np.asarray(
        [est.process_sla(vm, load, required,
                         Resources(cpu=float(gc), mem=float(gm),
                                   bw=float(gb)), contract,
                         queue_len=queue_len)
         for gc, gm, gb in zip(np.asarray(given_cpu, dtype=float),
                               np.asarray(given_mem, dtype=float),
                               np.asarray(given_bw, dtype=float))],
        dtype=float)


def _fit_fraction(required: Resources, given_cpu, given_mem,
                  given_bw) -> Tuple[np.ndarray, np.ndarray]:
    """Per-host (fits, worst granted/required ratio) for one demand.

    The same fit arithmetic :class:`ObservedEstimator` scores SLA with;
    shared so the risk-aware ML path can fall back to it where the
    learned models have no support (starved grants).
    """
    gc = np.asarray(given_cpu, dtype=float)
    gm = np.asarray(given_mem, dtype=float)
    gb = np.asarray(given_bw, dtype=float)
    fits = ((required.cpu <= gc + 1e-9) & (required.mem <= gm + 1e-9)
            & (required.bw <= gb + 1e-9))
    ones = np.ones_like(gc)
    frac = np.minimum(
        np.minimum(gc / required.cpu if required.cpu > 0 else ones,
                   gm / required.mem if required.mem > 0 else ones),
        gb / required.bw if required.bw > 0 else ones)
    return fits, frac


class Estimator:
    """Interface; see module docstring.  Subclasses override all methods.

    The ``*_batch`` methods answer the same queries for one VM against a
    whole host batch at once (aligned arrays, one entry per candidate
    host).  The defaults fall back to looping the scalar methods so any
    estimator works with the batch scorer; the built-in estimators
    override them with vectorized numpy, which is where the batch
    scheduler's speedup comes from.  An estimator must be *consistent*
    about its RT path: ``process_rt`` should return None for every host or
    for none (all built-ins are).
    """

    def required_resources(self, vm: VirtualMachine, load: LoadVector,
                           cpu_cap: float) -> Resources:
        raise NotImplementedError

    def pm_cpu(self, vm_cpus: Sequence[float]) -> float:
        raise NotImplementedError

    def process_rt(self, vm: VirtualMachine, load: LoadVector,
                   required: Resources, given: Resources,
                   queue_len: float = 0.0) -> Optional[float]:
        raise NotImplementedError

    def process_sla(self, vm: VirtualMachine, load: LoadVector,
                    required: Resources, given: Resources,
                    contract: SLAContract,
                    queue_len: float = 0.0) -> float:
        raise NotImplementedError

    # -- batch interface (vectorized over candidate hosts) -------------------
    def required_resources_batch(self, vms: Sequence[VirtualMachine],
                                 rps, bytes_per_req, cpu_time_per_req,
                                 cpu_cap: float) -> Optional[Tuple]:
        """Per-VM demand estimates from aligned aggregate-load arrays.

        The round-snapshot scheduling path hands the estimator every VM of
        a round at once (one entry per VM, aligned with ``vms``).  Returns
        the ``(cpu, mem, bw)`` requirement arrays, or None when the
        estimator has no vectorized formulation — callers then fall back
        to per-VM :meth:`required_resources` calls.  Implementations must
        match the scalar method element-for-element.
        """
        return None

    def pm_cpu_batch(self, counts, sums) -> Optional[np.ndarray]:
        """Host CPU from per-host (#VMs, sum of VM CPU) aggregates.

        Returns None when the estimator has no aggregate-only formulation;
        the batch scorer then falls back to per-host :meth:`pm_cpu` calls.
        """
        return None

    def process_rt_batch(self, vm: VirtualMachine, load: LoadVector,
                         required: Resources, given_cpu, given_mem,
                         given_bw,
                         queue_len: float = 0.0) -> Optional[np.ndarray]:
        """Per-host :meth:`process_rt`; None when the estimator scores SLA
        directly."""
        return scalar_process_rt_batch(self, vm, load, required, given_cpu,
                                       given_mem, given_bw,
                                       queue_len=queue_len)

    def process_sla_batch(self, vm: VirtualMachine, load: LoadVector,
                          required: Resources, given_cpu, given_mem,
                          given_bw, contract: SLAContract,
                          queue_len: float = 0.0) -> np.ndarray:
        """Per-host :meth:`process_sla` (default: scalar loop)."""
        return scalar_process_sla_batch(self, vm, load, required, given_cpu,
                                        given_mem, given_bw, contract,
                                        queue_len=queue_len)


@dataclass
class OracleEstimator:
    """Ground truth from the simulator's own models (upper-bound baseline)."""

    demand_model: DemandModel = field(default_factory=DemandModel)
    rt_model: ResponseTimeModel = field(default_factory=ResponseTimeModel)

    def required_resources(self, vm: VirtualMachine, load: LoadVector,
                           cpu_cap: float) -> Resources:
        # cpu_cap caps the *demand estimate*, not the grant (the VM's
        # configured maximum applies to grants); callers pass inf to see
        # overload as demand beyond any host.
        return self.demand_model.required_resources(
            load, vm.base_mem_mb, cpu_cap=cpu_cap)

    def pm_cpu(self, vm_cpus: Sequence[float]) -> float:
        return self.demand_model.pm_cpu(np.asarray(list(vm_cpus)))

    def process_rt(self, vm: VirtualMachine, load: LoadVector,
                   required: Resources, given: Resources,
                   queue_len: float = 0.0) -> Optional[float]:
        return self.rt_model.process_rt(load, required, given)

    def process_sla(self, vm: VirtualMachine, load: LoadVector,
                    required: Resources, given: Resources,
                    contract: SLAContract,
                    queue_len: float = 0.0) -> float:
        rt = self.process_rt(vm, load, required, given, queue_len)
        return contract.fulfillment(rt)

    # -- batch interface ------------------------------------------------------
    def required_resources_batch(self, vms: Sequence[VirtualMachine],
                                 rps, bytes_per_req, cpu_time_per_req,
                                 cpu_cap: float) -> Tuple:
        base_mem = np.array([vm.base_mem_mb for vm in vms], dtype=float)
        return self.demand_model.required_batch(
            np.asarray(rps, dtype=float),
            np.asarray(bytes_per_req, dtype=float),
            np.asarray(cpu_time_per_req, dtype=float),
            base_mem, cpu_cap=cpu_cap)

    def pm_cpu_batch(self, counts, sums) -> np.ndarray:
        return self.demand_model.pm_cpu_batch(counts, sums)

    def process_rt_batch(self, vm: VirtualMachine, load: LoadVector,
                         required: Resources, given_cpu, given_mem,
                         given_bw, queue_len: float = 0.0) -> np.ndarray:
        return self.rt_model.process_rt_arrays(
            load.cpu_time_per_req, load.rps, required.cpu, given_cpu,
            required.mem, given_mem, required.bw, given_bw)

    def process_sla_batch(self, vm: VirtualMachine, load: LoadVector,
                          required: Resources, given_cpu, given_mem,
                          given_bw, contract: SLAContract,
                          queue_len: float = 0.0) -> np.ndarray:
        rt = self.process_rt_batch(vm, load, required, given_cpu,
                                   given_mem, given_bw, queue_len)
        return contract.fulfillment(rt)


@dataclass
class ObservedEstimator:
    """Last-round monitored usage; the paper's non-ML Best-Fit inputs.

    Requirements are whatever the hypervisor measured in the previous
    scheduling round (optionally scaled by ``overbook`` — the BF-OB variant
    books double).  The estimator is *reactive*: it has no way to anticipate
    load-driven RT degradation, so it scores SLA only through the resource
    fit (fits => compliant), which is exactly the blind spot the paper's ML
    models remove.
    """

    monitor: Monitor
    overbook: float = 1.0
    #: Fallback when a VM has never been observed (first placement).
    default_required: Resources = field(
        default_factory=lambda: Resources(cpu=100.0, mem=512.0, bw=500.0))

    def __post_init__(self) -> None:
        if self.overbook <= 0:
            raise ValueError("overbook must be positive")
        self._last: Dict[str, Tuple[int, Resources, float]] = {}

    def refresh(self) -> None:
        """Index the newest observation per VM (call once per round)."""
        for s in self.monitor.vm_samples:
            prev = self._last.get(s.vm_id)
            if prev is None or s.t >= prev[0]:
                self._last[s.vm_id] = (
                    s.t,
                    Resources(cpu=s.used_cpu, mem=s.used_mem,
                              bw=s.net_in + s.net_out),
                    s.rt)

    def last_observation_t(self, vm_id: str) -> Optional[int]:
        entry = self._last.get(vm_id)
        return None if entry is None else entry[0]

    def observed_usage(self, vm_id: str) -> Optional[Resources]:
        entry = self._last.get(vm_id)
        return None if entry is None else entry[1]

    def required_resources(self, vm: VirtualMachine, load: LoadVector,
                           cpu_cap: float) -> Resources:
        entry = self._last.get(vm.vm_id)
        base = entry[1] if entry is not None else self.default_required
        booked = base * self.overbook
        # Booking beyond the VM's configured ceiling is meaningless — the
        # hypervisor would never grant it.
        return Resources(cpu=min(booked.cpu, vm.max_resources.cpu, cpu_cap),
                         mem=min(booked.mem, vm.max_resources.mem),
                         bw=min(booked.bw, vm.max_resources.bw))

    def pm_cpu(self, vm_cpus: Sequence[float]) -> float:
        # No learned overhead model: the naive sum (the paper notes this
        # underestimates real PM CPU).
        return float(np.sum(np.asarray(list(vm_cpus))))

    def process_rt(self, vm: VirtualMachine, load: LoadVector,
                   required: Resources, given: Resources,
                   queue_len: float = 0.0) -> Optional[float]:
        # A reactive monitor cannot price a *tentative* placement's RT;
        # plain Best-Fit decides on fit, power and latency only.
        return None

    def process_sla(self, vm: VirtualMachine, load: LoadVector,
                    required: Resources, given: Resources,
                    contract: SLAContract,
                    queue_len: float = 0.0) -> float:
        # Reactive view: if the booked resources fit, assume compliance;
        # degrade proportionally on shortfall.
        if required.fits_in(given, slack=1e-9):
            return 1.0
        frac = min((given.cpu / required.cpu) if required.cpu > 0 else 1.0,
                   (given.mem / required.mem) if required.mem > 0 else 1.0,
                   (given.bw / required.bw) if required.bw > 0 else 1.0)
        return max(0.0, frac)

    # -- batch interface ------------------------------------------------------
    def required_resources_batch(self, vms: Sequence[VirtualMachine],
                                 rps, bytes_per_req, cpu_time_per_req,
                                 cpu_cap: float) -> Tuple:
        # Observed bookings are load-independent: gather the last
        # observation per VM, then apply the same overbook-and-clip the
        # scalar method applies (floats, so results are bit-identical).
        n = len(vms)
        cpu = np.empty(n)
        mem = np.empty(n)
        bw = np.empty(n)
        for j, vm in enumerate(vms):
            entry = self._last.get(vm.vm_id)
            base = entry[1] if entry is not None else self.default_required
            cpu[j] = min(base.cpu * self.overbook, vm.max_resources.cpu,
                         cpu_cap)
            mem[j] = min(base.mem * self.overbook, vm.max_resources.mem)
            bw[j] = min(base.bw * self.overbook, vm.max_resources.bw)
        return cpu, mem, bw

    def pm_cpu_batch(self, counts, sums) -> np.ndarray:
        return np.asarray(sums, dtype=float)

    def process_rt_batch(self, vm: VirtualMachine, load: LoadVector,
                         required: Resources, given_cpu, given_mem,
                         given_bw, queue_len: float = 0.0) -> None:
        return None

    def process_sla_batch(self, vm: VirtualMachine, load: LoadVector,
                          required: Resources, given_cpu, given_mem,
                          given_bw, contract: SLAContract,
                          queue_len: float = 0.0) -> np.ndarray:
        fits, frac = _fit_fraction(required, given_cpu, given_mem, given_bw)
        return np.where(fits, 1.0, np.maximum(0.0, frac))


@dataclass
class MLEstimator:
    """Table I models driving the scheduler (the paper's contribution).

    ``sla_mode`` selects the §IV.B design choice:

    * ``"direct"`` — predict SLA with k-NN (the paper's pick);
    * ``"rt"`` — predict RT with M5P and push it through the contract.

    ``risk`` (a :class:`~repro.ml.calibration.RiskConfig`) turns on
    uncertainty-aware scoring: the QoS prediction is shifted to its
    conservative side by the predictor's split-conformal margin plus a
    weighted ensemble spread (SLA lowered / RT raised), and demand
    estimates are optionally inflated to their conformal upper bound.
    This is the antidote to ranking amplification: argmax over many
    candidate hosts picks the most *optimistic* score, so the penalty is
    largest exactly where a single model's noise would win the round.
    The scalar methods delegate to the batch ones on one-element arrays
    whenever risk is on, so both paths stay equal by construction.
    """

    models: ModelSet
    sla_mode: str = "direct"
    risk: Optional[RiskConfig] = None

    def __post_init__(self) -> None:
        if self.sla_mode not in ("direct", "rt"):
            raise ValueError("sla_mode must be 'direct' or 'rt'")
        if self.risk is not None:
            # Resolve the margins once — they are fixed numbers per
            # (model set, coverage), and a missing calibration must fail
            # here, not mid-round.
            score_key = "vm_sla" if self.sla_mode == "direct" else "vm_rt"
            self._score_margin = self.models.conformal_margin(
                score_key, self.risk.coverage)
            self._demand_margins = (
                self.models.demand_margins(self.risk.demand_coverage)
                if self.risk.demand_coverage is not None else None)

    def required_resources(self, vm: VirtualMachine, load: LoadVector,
                           cpu_cap: float) -> Resources:
        base = self.models.predict_requirements(
            load, cpu_cap=cpu_cap, mem_floor=vm.base_mem_mb)
        if self.risk is None or self._demand_margins is None:
            return base
        dm = self._demand_margins
        return Resources(cpu=min(base.cpu + dm.cpu, cpu_cap),
                         mem=base.mem + dm.mem,
                         bw=base.bw + dm.bw)

    def pm_cpu(self, vm_cpus: Sequence[float]) -> float:
        return self.models.predict_pm_cpu(vm_cpus)

    def process_rt(self, vm: VirtualMachine, load: LoadVector,
                   required: Resources, given: Resources,
                   queue_len: float = 0.0) -> Optional[float]:
        # In direct mode the k-NN SLA score drives the decision (the
        # paper's preferred design); returning None routes the placement
        # scorer through process_sla.
        if self.sla_mode == "direct":
            return None
        if self.risk is not None:
            return float(self.process_rt_batch(
                vm, load, required, np.array([given.cpu]),
                np.array([given.mem]), np.array([given.bw]),
                queue_len=queue_len)[0])
        return self.models.predict_rt(load, given, queue_len=queue_len)

    def predict_rt(self, load: LoadVector, given: Resources,
                   queue_len: float = 0.0) -> float:
        """Raw RT prediction, regardless of sla_mode (for ablations)."""
        return self.models.predict_rt(load, given, queue_len=queue_len)

    def process_sla(self, vm: VirtualMachine, load: LoadVector,
                    required: Resources, given: Resources,
                    contract: SLAContract,
                    queue_len: float = 0.0) -> float:
        if self.risk is not None:
            return float(self.process_sla_batch(
                vm, load, required, np.array([given.cpu]),
                np.array([given.mem]), np.array([given.bw]), contract,
                queue_len=queue_len)[0])
        if self.sla_mode == "direct":
            return self.models.predict_sla(load, given, queue_len=queue_len)
        rt = self.models.predict_rt(load, given, queue_len=queue_len)
        return contract.fulfillment(rt)

    # -- batch interface ------------------------------------------------------
    def required_resources_batch(self, vms: Sequence[VirtualMachine],
                                 rps, bytes_per_req, cpu_time_per_req,
                                 cpu_cap: float) -> Tuple:
        # One model-set prediction for the whole round instead of one
        # 1-row prediction per VM; the predictors are row-independent, so
        # results match the scalar method element-for-element.
        mem_floor = np.array([vm.base_mem_mb for vm in vms], dtype=float)
        cpu, mem, bw = self.models.predict_requirements_batch(
            rps, bytes_per_req, cpu_time_per_req, cpu_cap=cpu_cap,
            mem_floor=mem_floor)
        if self.risk is None or self._demand_margins is None:
            return cpu, mem, bw
        # Same scalar margins, same IEEE ops as the scalar method.
        dm = self._demand_margins
        return (np.minimum(cpu + dm.cpu, cpu_cap), mem + dm.mem,
                bw + dm.bw)

    def pm_cpu_batch(self, counts, sums) -> np.ndarray:
        return self.models.predict_pm_cpu_batch(counts, sums)

    def process_rt_batch(self, vm: VirtualMachine, load: LoadVector,
                         required: Resources, given_cpu, given_mem,
                         given_bw,
                         queue_len: float = 0.0) -> Optional[np.ndarray]:
        if self.sla_mode == "direct":
            return None
        if self.risk is not None:
            mean, spread = self.models.predict_rt_batch_stats(
                load, given_cpu, given_mem, given_bw, queue_len=queue_len)
            rt = (mean + self.risk.spread_weight * spread
                  + self._score_margin)
            if self.risk.fit_guard:
                # Starved grants are outside the harvest's support:
                # stretch the predicted RT by the worst shortfall ratio
                # (work at fit-fraction f of its resources takes >= 1/f
                # as long) instead of trusting the extrapolation.
                fits, frac = _fit_fraction(required, given_cpu, given_mem,
                                           given_bw)
                rt = np.where(fits, rt, rt / np.maximum(frac, 1e-12))
            return rt
        return self.models.predict_rt_batch(load, given_cpu, given_mem,
                                            given_bw, queue_len=queue_len)

    def process_sla_batch(self, vm: VirtualMachine, load: LoadVector,
                          required: Resources, given_cpu, given_mem,
                          given_bw, contract: SLAContract,
                          queue_len: float = 0.0) -> np.ndarray:
        if self.sla_mode == "direct":
            if self.risk is not None:
                mean, spread = self.models.predict_sla_batch_stats(
                    load, given_cpu, given_mem, given_bw,
                    queue_len=queue_len)
                sla = np.clip(mean - self.risk.spread_weight * spread
                              - self._score_margin, 0.0, 1.0)
                if self.risk.fit_guard:
                    # Cap by the fit-degradation bound where the demand
                    # does not fit: the learned score has no support
                    # there (see RiskConfig.fit_guard).
                    fits, frac = _fit_fraction(required, given_cpu,
                                               given_mem, given_bw)
                    sla = np.minimum(
                        sla, np.where(fits, 1.0, np.maximum(0.0, frac)))
                return sla
            return self.models.predict_sla_batch(load, given_cpu, given_mem,
                                                 given_bw,
                                                 queue_len=queue_len)
        rt = self.process_rt_batch(vm, load, required, given_cpu, given_mem,
                                   given_bw, queue_len=queue_len)
        return contract.fulfillment(rt)
