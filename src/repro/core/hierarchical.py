"""Two-layer (hierarchical) multi-DC scheduling (paper §III.B, §IV.C).

Multi-DC systems decentralize: each DC manages its own PMs and VMs, and the
global scheduler sees only a *narrow interface* per DC —

* the VMs that "could improve [their] QoS if moved across DCs (namely,
  because all PMs in their current DC already have a very high load)", and
* "a set of available physical machines" offered as candidate hosts
  (identical empty machines collapsed, almost-full machines withheld).

Each round therefore runs a number of intra-DC Best-Fit problems (starting
from the previous, usually good, schedule) plus one small global problem,
which is what keeps the method scalable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..sim.engine import Scheduler
from ..sim.multidc import MultiDCSystem
from ..workload.traces import WorkloadTrace
from .bestfit import SchedulingRound, build_problem, descending_best_fit
from .estimators import Estimator, ObservedEstimator
from .model import ObjectiveWeights

__all__ = ["HierarchicalScheduler", "RoundDiagnostics",
           "DEFAULT_MIN_GAIN_EUR"]

#: Default migration hysteresis of the hierarchical scheduler, EUR per
#: round.  At ``min_gain_eur=0`` the 8-DC fleet scenario churns heavily:
#: thousands of moves whose scored gain is within numerical noise of
#: staying put, each paying a real blackout penalty (the paper's
#: migration-penalty narrative: "pointless moves don't happen").  Half a
#: tenth of a euro-cent is the revenue-noise floor of one 10-minute
#: round — it suppresses the churn (measured ~3x fewer migrations with
#: *higher* SLA and profit) without blocking tariff- or SLA-driven moves,
#: whose gains are orders of magnitude larger.  Pass ``min_gain_eur=0.0``
#: to opt out (the pre-PR-4 behaviour).
DEFAULT_MIN_GAIN_EUR = 0.0005


@dataclass
class RoundDiagnostics:
    """What the last scheduling round did (observability for experiments)."""

    t: int = -1
    intra_problems: int = 0
    intra_vms: int = 0
    movable_vms: List[str] = field(default_factory=list)
    offered_hosts: List[str] = field(default_factory=list)
    global_moves: Dict[str, str] = field(default_factory=dict)


@dataclass
class HierarchicalScheduler:
    """Intra-DC consolidation plus a global inter-DC round.

    Parameters
    ----------
    estimator:
        Knowledge source for both layers (ML, observed, or oracle).
    weights:
        Objective weights shared by both layers.
    sla_move_threshold:
        A VM whose best *local* placement still scores below this SLA is
        offered to the global round.
    max_offers_per_dc, min_free_cpu:
        The host-offer narrowing of §IV.C.
    min_gain_eur:
        Migration hysteresis of the underlying Best-Fit: a move must beat
        staying put by at least this many EUR to happen.  Defaults to
        :data:`DEFAULT_MIN_GAIN_EUR` (churn damping); pass ``0.0`` to
        opt out.
    skip_well_consolidated:
        When True, intra-DC rounds skip VMs whose current placement already
        fits and scores above the threshold (the paper's "do not include
        VMs and PMs that are already performing well").
    use_round_snapshot:
        When True (the default) each round snapshots the system once as a
        :class:`~repro.core.bestfit.SchedulingRound` and every intra-DC
        and global problem is a cheap sub-view of it; ``False`` rebuilds
        each problem from live objects via
        :func:`~repro.core.bestfit.build_problem` (the executable
        reference — both produce identical assignments).
    shard_rounds:
        When True (requires ``use_round_snapshot``), each phase-1 problem
        gets its own *DC-scoped* :class:`SchedulingRound` (host base and
        placement walk restricted to that DC's PMs, demand batch restricted
        to its VMs) and the phase-2 global problem a round scoped to the
        narrow candidate set — construction cost becomes O(shard) instead
        of O(fleet) per problem, which is what keeps rounds tractable on
        sharded 50–100k-VM fleets.  Assignments are identical to the
        single-snapshot path (differential tests pin this).
    """

    estimator: Estimator
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    sla_move_threshold: float = 0.95
    max_offers_per_dc: int = 2
    min_free_cpu: float = 50.0
    min_gain_eur: float = DEFAULT_MIN_GAIN_EUR
    skip_well_consolidated: bool = False
    use_round_snapshot: bool = True
    shard_rounds: bool = False
    last_round: RoundDiagnostics = field(default_factory=RoundDiagnostics)

    def __post_init__(self) -> None:
        if not 0.0 <= self.sla_move_threshold <= 1.0:
            raise ValueError("sla_move_threshold must lie in [0, 1]")

    # The engine invokes the instance directly as its Scheduler callable.
    def __call__(self, system: MultiDCSystem, trace: WorkloadTrace,
                 t: int) -> Dict[str, str]:
        if isinstance(self.estimator, ObservedEstimator):
            self.estimator.refresh()
        diag = RoundDiagnostics(t=t)
        assignment: Dict[str, str] = {}
        movable: List[str] = []
        # One snapshot serves every problem of this round (phase 1 + 2) —
        # unless shard_rounds, where each problem gets its own scoped
        # snapshot (O(shard) construction; identical assignments).
        round_ = (SchedulingRound(system, trace, t, self.estimator,
                                  weights=self.weights)
                  if self.use_round_snapshot and not self.shard_rounds
                  else None)

        def solve(scope_vms, scope_pms):
            if self.use_round_snapshot:
                r = round_ if round_ is not None else SchedulingRound(
                    system, trace, t, self.estimator, weights=self.weights,
                    scope_pms=scope_pms, batch_vms=scope_vms)
                return r.best_fit(scope_vms=scope_vms,
                                  scope_pms=scope_pms,
                                  min_gain_eur=self.min_gain_eur)
            problem = build_problem(system, trace, t, self.estimator,
                                    scope_vms=scope_vms,
                                    scope_pms=scope_pms,
                                    weights=self.weights)
            return descending_best_fit(problem,
                                       min_gain_eur=self.min_gain_eur)

        # -- Phase 1: one Best-Fit problem per DC ---------------------------
        for dc in system.datacenters:
            local_vms = sorted(dc.vm_ids)
            if not local_vms:
                continue
            result = solve(local_vms, [pm.pm_id for pm in dc.pms])
            diag.intra_problems += 1
            diag.intra_vms += len(local_vms)
            for vm_id, pm_id in result.assignment.items():
                assignment[vm_id] = pm_id
            for vm_id in local_vms:
                # Untraced VMs are filtered out of the problem and have no
                # evaluation; they stay put and are never offered around.
                evaluation = result.evaluations.get(vm_id)
                if (evaluation is not None
                        and evaluation.sla < self.sla_move_threshold):
                    movable.append(vm_id)

        # Orphaned VMs (e.g. after a host failure) belong to no DC, so no
        # intra-DC round covers them; the global round must place them.
        placed_now = set(system.placement())
        orphans = sorted(set(system.vms) - placed_now)
        movable.extend(orphans)

        # -- Phase 2: the global round over the narrow interface -------------
        if movable:
            offers: List[str] = []
            current_hosts: Set[str] = set()
            placement = system.placement()
            for vm_id in movable:
                pm_id = placement.get(vm_id)
                if pm_id is not None:
                    current_hosts.add(pm_id)
            for dc in system.datacenters:
                for pm in dc.offered_hosts(min_free_cpu=self.min_free_cpu,
                                           max_offers=self.max_offers_per_dc):
                    offers.append(pm.pm_id)
            candidate_pms = sorted(set(offers) | current_hosts)
            # No DC offered anything and no movable VM holds a host (e.g.
            # only freshly-orphaned VMs after a failure into a full
            # fleet): there is no global problem to solve this round —
            # orphans wait for capacity instead of crashing the round.
            if candidate_pms:
                result = solve(movable, candidate_pms)
                for vm_id, pm_id in result.assignment.items():
                    if assignment.get(vm_id) != pm_id:
                        diag.global_moves[vm_id] = pm_id
                    assignment[vm_id] = pm_id
            diag.offered_hosts = candidate_pms
        diag.movable_vms = movable
        self.last_round = diag
        return assignment
