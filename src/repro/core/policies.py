"""Policy presets: the schedulers the paper's experiments compare.

Each factory returns an engine-compatible scheduler callable:

* :func:`static_scheduler` — never moves anything (Table III
  "Static-Global": DCs cooperate only by routing traffic).
* :func:`follow_the_load_scheduler` — revenue/latency-only objective
  (Figure 5 sanity check): the VM chases its dominant load source.
* :func:`bf_scheduler` / :func:`bf_overbook_scheduler` — plain Best-Fit on
  observed usage (and the 2x-overbooking variant) for the intra-DC
  comparison of Figure 4.
* :func:`bf_ml_scheduler` — ML-enhanced Best-Fit over all hosts (flat), the
  paper's full scheduler for small multi-DC scenarios (Figures 6-7).
* :func:`hierarchical_ml_scheduler` — the two-layer variant for larger
  systems.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ml.calibration import RiskConfig
from ..ml.predictors import ModelSet
from ..sim.engine import Scheduler
from ..sim.monitor import Monitor
from .bestfit import build_problem, descending_best_fit, \
    make_bestfit_scheduler
from .estimators import MLEstimator, ObservedEstimator, OracleEstimator
from .exact import exact_schedule
from .hierarchical import DEFAULT_MIN_GAIN_EUR, HierarchicalScheduler
from .model import ObjectiveWeights

__all__ = ["static_scheduler", "follow_the_load_scheduler", "bf_scheduler",
           "bf_overbook_scheduler", "bf_ml_scheduler",
           "oracle_scheduler", "hierarchical_ml_scheduler",
           "exact_scheduler"]


def static_scheduler() -> Scheduler:
    """The do-nothing baseline: VMs stay wherever they were deployed."""

    def schedule(system, trace, t):
        return None

    return schedule


def follow_the_load_scheduler(min_gain_eur: float = 1e-6) -> Scheduler:
    """Latency-only SLA drives placement; energy and migration cost zero.

    Uses the oracle estimator so resource fit never interferes — exactly
    the paper's sanity-check setting where "the driving function is SLA
    taking into account only the request latency".
    """
    weights = ObjectiveWeights(revenue=1.0, energy=0.0, migration=0.0)
    return make_bestfit_scheduler(OracleEstimator(), weights=weights,
                                  min_gain_eur=min_gain_eur)


def bf_scheduler(monitor: Monitor,
                 weights: Optional[ObjectiveWeights] = None,
                 scope_pms: Optional[Sequence[str]] = None) -> Scheduler:
    """Plain Best-Fit: fit by last-10-minutes observed usage."""
    return make_bestfit_scheduler(ObservedEstimator(monitor),
                                  weights=weights, scope_pms=scope_pms)


def bf_overbook_scheduler(monitor: Monitor, overbook: float = 2.0,
                          weights: Optional[ObjectiveWeights] = None,
                          scope_pms: Optional[Sequence[str]] = None
                          ) -> Scheduler:
    """Best-Fit with resource overbooking (BF-OB): book ``overbook`` times
    the observed usage to absorb unexpected load peaks."""
    return make_bestfit_scheduler(ObservedEstimator(monitor,
                                                    overbook=overbook),
                                  weights=weights, scope_pms=scope_pms)


def bf_ml_scheduler(models: ModelSet, sla_mode: str = "direct",
                    weights: Optional[ObjectiveWeights] = None,
                    min_gain_eur: float = 0.0,
                    scope_pms: Optional[Sequence[str]] = None,
                    forecaster=None,
                    risk: Optional[RiskConfig] = None) -> Scheduler:
    """ML-enhanced Best-Fit: Table I models drive fit and QoS predictions.

    Pass a :class:`repro.workload.forecast.LoadForecaster` to plan on
    forecast rather than measured current-interval load, and a
    :class:`~repro.ml.calibration.RiskConfig` for calibrated,
    variance-penalized ranking (the large-candidate-set antidote).
    """
    return make_bestfit_scheduler(MLEstimator(models, sla_mode=sla_mode,
                                              risk=risk),
                                  weights=weights,
                                  min_gain_eur=min_gain_eur,
                                  scope_pms=scope_pms,
                                  forecaster=forecaster)


def oracle_scheduler(weights: Optional[ObjectiveWeights] = None,
                     min_gain_eur: float = 0.0) -> Scheduler:
    """Best-Fit with ground-truth models (upper-bound reference)."""
    return make_bestfit_scheduler(OracleEstimator(), weights=weights,
                                  min_gain_eur=min_gain_eur)


def exact_scheduler(weights: Optional[ObjectiveWeights] = None,
                    max_nodes: int = 200_000,
                    fallback: bool = True) -> Scheduler:
    """Branch-and-bound optimum per round (the arena's per-round oracle).

    Solves each round's placement problem exactly with
    :func:`repro.core.exact.exact_schedule` under ground-truth
    (:class:`OracleEstimator`) models.  The search is O(hosts^VMs), so
    this only plays small instances; when the ``max_nodes`` budget is
    exhausted the round falls back to :func:`descending_best_fit`
    (``fallback=False`` re-raises instead).  The returned callable
    counts budget exhaustions on its ``n_fallbacks`` attribute.
    """
    estimator = OracleEstimator()

    def schedule(system, trace, t):
        problem = build_problem(system, trace, t, estimator,
                                weights=weights)
        if not problem.requests or not problem.hosts:
            return {}
        try:
            return exact_schedule(problem, max_nodes=max_nodes).assignment
        except RuntimeError:
            if not fallback:
                raise
            schedule.n_fallbacks += 1
            return descending_best_fit(problem).assignment

    schedule.n_fallbacks = 0
    return schedule


def hierarchical_ml_scheduler(models: ModelSet, sla_mode: str = "direct",
                              weights: Optional[ObjectiveWeights] = None,
                              sla_move_threshold: float = 0.95,
                              max_offers_per_dc: int = 2,
                              min_gain_eur: float = DEFAULT_MIN_GAIN_EUR,
                              risk: Optional[RiskConfig] = None
                              ) -> HierarchicalScheduler:
    """The paper's two-layer scheduler with learned models.

    ``min_gain_eur`` defaults to the churn-damping hysteresis
    (:data:`repro.core.hierarchical.DEFAULT_MIN_GAIN_EUR`); pass ``0.0``
    to opt out.  ``risk`` enables calibrated, variance-penalized ranking
    (:class:`~repro.ml.calibration.RiskConfig`).
    """
    return HierarchicalScheduler(
        estimator=MLEstimator(models, sla_mode=sla_mode, risk=risk),
        weights=weights or ObjectiveWeights(),
        sla_move_threshold=sla_move_threshold,
        max_offers_per_dc=max_offers_per_dc,
        min_gain_eur=min_gain_eur)
