"""On-line learning: periodic retraining on recent monitored data.

The paper's future work (§VI.4): "the use of on-line learning methods, able
to retrain continuously on recent data, to make the system react quickly to
changes in either application behavior, hardware or middleware changes, or
workload characteristics."

:class:`OnlineLearningScheduler` wraps ML-enhanced Best-Fit: it keeps its
own monitor over the live run, and every ``retrain_every`` rounds refits the
seven Table I predictors on a sliding window of the freshest samples
(optionally blended with a warm-start harvest).  Until enough samples exist
it falls back to the bootstrap models (or, lacking those, to plain observed
Best-Fit behaviour through optimistic defaults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..ml.predictors import ModelSet, train_model_set
from ..sim.engine import Scheduler
from ..sim.monitor import Monitor
from ..sim.multidc import MultiDCSystem
from ..workload.traces import WorkloadTrace
from .bestfit import build_problem, descending_best_fit
from .estimators import MLEstimator
from .model import ObjectiveWeights

__all__ = ["OnlineLearningScheduler"]


@dataclass
class OnlineLearningScheduler:
    """ML Best-Fit with periodic retraining on a sliding sample window.

    Parameters
    ----------
    monitor:
        The live monitor (share it with ``run_simulation`` so observations
        flow in); the scheduler never clears it, it reads the tail.
    bootstrap:
        Models used before the first retrain (e.g. from an offline
        harvest); None means "wait for data", scheduling nothing until
        ``min_samples`` observations exist.
    retrain_every:
        Rounds between refits.
    window:
        Number of freshest VM samples per refit (PM samples follow suit).
    min_samples:
        Don't (re)train below this many VM samples.
    """

    monitor: Monitor
    bootstrap: Optional[ModelSet] = None
    retrain_every: int = 12
    window: int = 2000
    min_samples: int = 120
    sla_mode: str = "direct"
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    min_gain_eur: float = 0.0
    seed: int = 0
    #: Diagnostics: interval of each completed retrain.
    retrain_history: list = field(default_factory=list)
    _models: Optional[ModelSet] = field(default=None, init=False)
    _rounds_seen: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.retrain_every < 1:
            raise ValueError("retrain_every must be >= 1")
        if self.window < self.min_samples:
            raise ValueError("window must be >= min_samples")
        self._models = self.bootstrap

    @property
    def models(self) -> Optional[ModelSet]:
        """The models currently driving decisions."""
        return self._models

    def _windowed_monitor(self) -> Monitor:
        """A monitor view holding only the freshest samples."""
        view = Monitor(rng=np.random.default_rng(self.seed + 1))
        view.vm_samples = list(self.monitor.vm_samples[-self.window:])
        if self.monitor.vm_samples:
            oldest_t = view.vm_samples[0].t
            view.pm_samples = [s for s in self.monitor.pm_samples
                               if s.t >= oldest_t]
        return view

    def _maybe_retrain(self) -> None:
        due = self._rounds_seen % self.retrain_every == 0
        if not due:
            return
        if len(self.monitor.vm_samples) < self.min_samples:
            return
        view = self._windowed_monitor()
        if len(view.pm_samples) < 10:
            return
        self._models = train_model_set(
            view, rng=np.random.default_rng(self.seed + self._rounds_seen))
        self.retrain_history.append(self._rounds_seen)

    def __call__(self, system: MultiDCSystem, trace: WorkloadTrace,
                 t: int) -> Optional[Dict[str, str]]:
        self._maybe_retrain()
        self._rounds_seen += 1
        if self._models is None:
            return None  # still warming up: keep the current placement
        estimator = MLEstimator(self._models, sla_mode=self.sla_mode)
        problem = build_problem(system, trace, t, estimator,
                                weights=self.weights)
        if not problem.requests:
            return None
        return descending_best_fit(
            problem, min_gain_eur=self.min_gain_eur).assignment
