"""Service Level Agreement model.

The paper's "RT to QoS" function (§III.C): fulfillment is 1 up to the agreed
baseline response time RT0, falls linearly to 0 at ``alpha * RT0``, and is 0
beyond.  The paper uses RT0 = 0.1 s and alpha = 10 in all experiments.

SLA fulfillment can be evaluated per load source and aggregated weighting by
request volume (§IV.A constraint 7: "over the average RT, weighting the
different load sources").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["SLAContract", "sla_fulfillment", "rt_for_fulfillment_arrays",
           "weighted_sla", "PAPER_SLA"]


def sla_fulfillment(rt, rt0, alpha):
    """The paper's piecewise SLA(RT) function; scalar or vectorized.

    ``SLA(RT) = 1`` for ``RT <= RT0``; ``0`` for ``RT > alpha*RT0``;
    linear in between.  ``rt0`` and ``alpha`` may be scalars (one
    contract) or arrays aligned with ``rt`` (per-VM contracts, as in the
    batch stepping path); everything broadcasts.
    """
    rt0_arr = np.asarray(rt0, dtype=float)
    alpha_arr = np.asarray(alpha, dtype=float)
    if np.any(rt0_arr <= 0):
        raise ValueError("rt0 must be positive")
    if np.any(alpha_arr <= 1):
        raise ValueError("alpha must exceed 1")
    rt_arr = np.asarray(rt, dtype=float)
    if np.any(rt_arr < 0):
        raise ValueError("response time must be non-negative")
    degraded = 1.0 - (rt_arr - rt0_arr) / ((alpha_arr - 1.0) * rt0_arr)
    out = np.clip(degraded, 0.0, 1.0)
    if np.ndim(rt) == 0 and np.ndim(rt0) == 0 and np.ndim(alpha) == 0:
        return float(out)
    return out


def rt_for_fulfillment_arrays(level, rt0, alpha) -> np.ndarray:
    """Vectorized inverse of :meth:`SLAContract.rt_for_fulfillment`.

    The largest RT achieving at least ``level`` fulfillment, elementwise;
    all arguments broadcast.  Unlike the scalar method it does not
    range-check ``level`` — the batch scoring path feeds it raw estimator
    outputs, whose sub-0 values extrapolate to the same (worse) RT the
    clipped SLA would imply.
    """
    level = np.asarray(level, dtype=float)
    rt0 = np.asarray(rt0, dtype=float)
    alpha = np.asarray(alpha, dtype=float)
    return np.where(level >= 1.0, rt0,
                    rt0 + (1.0 - level) * (alpha - 1.0) * rt0)


@dataclass(frozen=True)
class SLAContract:
    """One VM's SLA: baseline RT0, tolerance alpha, revenue at fulfillment 1.

    ``price_eur_per_hour`` is the Amazon-EC2-like VM-hour price the paper
    uses (0.17 EUR/VMh).  Revenue scales with fulfillment; see
    :mod:`repro.core.profit`.
    """

    rt0: float = 0.1
    alpha: float = 10.0
    price_eur_per_hour: float = 0.17

    def __post_init__(self) -> None:
        if self.rt0 <= 0:
            raise ValueError("rt0 must be positive")
        if self.alpha <= 1:
            raise ValueError("alpha must exceed 1")
        if self.price_eur_per_hour < 0:
            raise ValueError("price must be non-negative")

    @property
    def cutoff_rt(self) -> float:
        """RT beyond which fulfillment is zero."""
        return self.alpha * self.rt0

    def fulfillment(self, rt):
        """SLA fulfillment for a response time (scalar or array)."""
        return sla_fulfillment(rt, self.rt0, self.alpha)

    def rt_for_fulfillment(self, level: float) -> float:
        """Inverse: the largest RT achieving at least ``level`` fulfillment."""
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must lie in [0, 1]")
        if level >= 1.0:
            return self.rt0
        return self.rt0 + (1.0 - level) * (self.alpha - 1.0) * self.rt0


def weighted_sla(rt_by_source: Mapping[str, float],
                 rps_by_source: Mapping[str, float],
                 contract: SLAContract) -> float:
    """Aggregate per-source fulfillment weighted by request volume.

    Sources with zero rate carry no weight; with no traffic at all the VM is
    considered fully compliant (there was nothing to violate).
    """
    total = 0.0
    weight = 0.0
    for src, rt in rt_by_source.items():
        rps = rps_by_source.get(src, 0.0)
        if rps < 0:
            raise ValueError(f"negative rps for source {src!r}")
        if rps == 0.0:
            continue
        total += contract.fulfillment(rt) * rps
        weight += rps
    if weight == 0.0:
        return 1.0
    return total / weight


#: The contract used across the paper's experiments.
PAPER_SLA = SLAContract(rt0=0.1, alpha=10.0, price_eur_per_hour=0.17)
