"""The economic objective: revenue, migration penalty, energy cost.

Figure 3's objective function:

    Profit = sum_i f_revenue(SLA[i])
           - sum_i f_penalty(Migr[i], Migl[i], ISize[i])
           - sum_h f_energycost(Power[h])

The concrete function shapes are provider/customer agreements; the paper uses
an EC2-like linear revenue (0.17 EUR per fully-compliant VM-hour), treats a
migrating VM as fully unavailable (SLA = 0) for the duration of the move, and
prices energy at the hosting DC's local tariff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .sla import SLAContract

__all__ = ["PriceBook", "revenue_eur", "migration_penalty_eur",
           "energy_cost_eur", "ProfitBreakdown"]


@dataclass(frozen=True)
class PriceBook:
    """All tariffs the objective needs.

    Parameters
    ----------
    vm_price_eur_per_hour:
        Revenue for one fully-SLA-compliant VM-hour.
    energy_price_eur_kwh:
        Electricity tariff per DC location.
    migration_penalty_eur_per_violation_hour:
        Extra contractual penalty per hour of migration blackout, on top of
        the revenue lost; defaults to the VM price (the provider refunds the
        affected time at the sale price).
    """

    vm_price_eur_per_hour: float = 0.17
    energy_price_eur_kwh: Mapping[str, float] = field(default_factory=dict)
    migration_penalty_eur_per_violation_hour: Optional[float] = None

    def __post_init__(self) -> None:
        if self.vm_price_eur_per_hour < 0:
            raise ValueError("vm price must be non-negative")
        for loc, p in self.energy_price_eur_kwh.items():
            if p < 0:
                raise ValueError(f"negative energy price for {loc!r}")

    @property
    def migration_penalty_rate(self) -> float:
        rate = self.migration_penalty_eur_per_violation_hour
        return self.vm_price_eur_per_hour if rate is None else rate

    def energy_price(self, location: str) -> float:
        try:
            return self.energy_price_eur_kwh[location]
        except KeyError:
            raise KeyError(f"no energy tariff for location {location!r}") from None


def revenue_eur(sla_fulfillment: float, hours: float,
                price_eur_per_hour: float) -> float:
    """f_revenue: linear in fulfillment and billed time."""
    if not 0.0 <= sla_fulfillment <= 1.0 + 1e-9:
        raise ValueError(f"fulfillment {sla_fulfillment} outside [0, 1]")
    if hours < 0:
        raise ValueError("hours must be non-negative")
    return price_eur_per_hour * min(sla_fulfillment, 1.0) * hours


def migration_penalty_eur(migration_seconds: float,
                          penalty_eur_per_hour: float) -> float:
    """f_penalty: proportional to the blackout duration.

    The blackout duration already reflects image size and inter-DC latency
    (Figure 3 parameters ``ISize`` and ``Migl``) via
    :meth:`repro.sim.network.NetworkModel.migration_seconds`.
    """
    if migration_seconds < 0:
        raise ValueError("migration_seconds must be non-negative")
    return penalty_eur_per_hour * migration_seconds / 3600.0


def energy_cost_eur(watts: float, seconds: float,
                    eur_per_kwh: float) -> float:
    """f_energycost: facility watt-hours at the local tariff."""
    if watts < 0 or seconds < 0 or eur_per_kwh < 0:
        raise ValueError("watts, seconds and tariff must be non-negative")
    return watts * seconds / 3600.0 / 1000.0 * eur_per_kwh


@dataclass
class ProfitBreakdown:
    """Accumulated objective terms over a run or a single interval."""

    revenue_eur: float = 0.0
    migration_penalty_eur: float = 0.0
    energy_cost_eur: float = 0.0

    @property
    def profit_eur(self) -> float:
        return (self.revenue_eur - self.migration_penalty_eur
                - self.energy_cost_eur)

    def __add__(self, other: "ProfitBreakdown") -> "ProfitBreakdown":
        return ProfitBreakdown(
            self.revenue_eur + other.revenue_eur,
            self.migration_penalty_eur + other.migration_penalty_eur,
            self.energy_cost_eur + other.energy_cost_eur,
        )

    def add_revenue(self, eur: float) -> None:
        self.revenue_eur += eur

    def add_migration_penalty(self, eur: float) -> None:
        self.migration_penalty_eur += eur

    def add_energy_cost(self, eur: float) -> None:
        self.energy_cost_eur += eur
