"""Workload generation: Li-BCN-like synthetic web-service traces.

Public API:

* :class:`~repro.workload.traces.SourceSeries`,
  :class:`~repro.workload.traces.WorkloadTrace` — trace containers.
* :class:`~repro.workload.libcn.ServiceProfile`,
  :data:`~repro.workload.libcn.SERVICE_PROFILES`,
  :class:`~repro.workload.libcn.LiBCNGenerator` — generators.
* :mod:`~repro.workload.patterns` — primitive temporal shapes.
"""

from .forecast import LoadForecaster, forecast_loads
from .libcn import SERVICE_PROFILES, LiBCNGenerator, ServiceProfile
from .patterns import (PAPER_FLASH_CROWD, TIMEZONE_OFFSETS_H, FlashCrowd,
                       apply_flash_crowds, ar1_noise, diurnal_profile,
                       poisson_bursts)
from .traces import SourceSeries, WorkloadTrace

__all__ = [
    "LoadForecaster",
    "forecast_loads",
    "SERVICE_PROFILES",
    "LiBCNGenerator",
    "ServiceProfile",
    "PAPER_FLASH_CROWD",
    "TIMEZONE_OFFSETS_H",
    "FlashCrowd",
    "apply_flash_crowds",
    "ar1_noise",
    "diurnal_profile",
    "poisson_bursts",
    "SourceSeries",
    "WorkloadTrace",
]
