"""Trace containers: per-(VM, source) load time series.

A :class:`WorkloadTrace` stores, for every (vm_id, source_location) pair,
three aligned arrays over scheduling intervals: requests/s, bytes/request and
CPU-time/request.  This is exactly the ``Load[VM, Locs]`` parameter of the
paper's mathematical model, extended over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from ..sim.demand import LoadVector

__all__ = ["SourceSeries", "WorkloadTrace"]


@dataclass(frozen=True)
class SourceSeries:
    """Load from one client region towards one VM over the whole run."""

    rps: np.ndarray
    bytes_per_req: np.ndarray
    cpu_time_per_req: np.ndarray

    def __post_init__(self) -> None:
        rps = np.asarray(self.rps, dtype=float)
        bpr = np.asarray(self.bytes_per_req, dtype=float)
        cpr = np.asarray(self.cpu_time_per_req, dtype=float)
        if not (rps.shape == bpr.shape == cpr.shape) or rps.ndim != 1:
            raise ValueError("series must be 1-D arrays of equal length")
        if np.any(rps < 0) or np.any(bpr < 0) or np.any(cpr < 0):
            raise ValueError("series must be non-negative")
        object.__setattr__(self, "rps", rps)
        object.__setattr__(self, "bytes_per_req", bpr)
        object.__setattr__(self, "cpu_time_per_req", cpr)

    def __len__(self) -> int:
        return len(self.rps)

    def at(self, t: int) -> LoadVector:
        return LoadVector(rps=float(self.rps[t]),
                          bytes_per_req=float(self.bytes_per_req[t]),
                          cpu_time_per_req=float(self.cpu_time_per_req[t]))

    def scaled(self, factor: float) -> "SourceSeries":
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return SourceSeries(self.rps * factor, self.bytes_per_req.copy(),
                            self.cpu_time_per_req.copy())


@dataclass
class WorkloadTrace:
    """All load series of one experiment.

    Attributes
    ----------
    interval_s:
        Seconds per scheduling interval (the paper schedules every 10 min).
    series:
        Mapping (vm_id, source_location) -> :class:`SourceSeries`.
    """

    interval_s: float = 600.0
    series: Dict[Tuple[str, str], SourceSeries] = field(default_factory=dict)
    # Per-VM index over `series` (lazily rebuilt; see _index_by_vm).
    _by_vm: Dict[str, List[Tuple[str, SourceSeries]]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _indexed_n: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        lengths = {len(s) for s in self.series.values()}
        if len(lengths) > 1:
            raise ValueError(f"inconsistent series lengths: {sorted(lengths)}")

    def _index_by_vm(self) -> Dict[str, List[Tuple[str, SourceSeries]]]:
        """The vm_id -> [(source, series), ...] index, insertion-ordered.

        ``series`` is a public mapping that :meth:`slice`, :meth:`scaled`
        and :meth:`load` populate directly, so the index is lazy: it is
        rebuilt whenever the number of series has changed since it was
        last computed.  This keeps per-VM lookups O(own series) instead of
        O(total series) — the hot-path cost that dominated large
        scheduling rounds.

        Count-based invalidation cannot detect a delete-plus-insert that
        leaves ``len(series)`` unchanged; like the
        :class:`~repro.sim.fleet.FleetState` cache (see ``_cache_key``
        there), in-place replacement of series mid-run is unsupported —
        traces are treated as append-only (:meth:`add` refuses
        overwrites).
        """
        if self._indexed_n != len(self.series):
            by_vm: Dict[str, List[Tuple[str, SourceSeries]]] = {}
            for (vm, src), s in self.series.items():
                by_vm.setdefault(vm, []).append((src, s))
            self._by_vm = by_vm
            self._indexed_n = len(self.series)
        return self._by_vm

    def series_of(self, vm_id: str) -> List[Tuple[str, SourceSeries]]:
        """All (source, series) pairs of one VM, in trace insertion order.

        Returns an empty list for VMs without any series (callers decide
        whether that is an error; :meth:`load_at` raises).
        """
        return list(self._index_by_vm().get(vm_id, ()))

    def has_vm(self, vm_id: str) -> bool:
        """Whether any series exists for ``vm_id`` (O(1) amortized)."""
        return vm_id in self._index_by_vm()

    @property
    def n_intervals(self) -> int:
        for s in self.series.values():
            return len(s)
        return 0

    @property
    def vm_ids(self) -> List[str]:
        return sorted({vm for vm, _ in self.series})

    @property
    def sources(self) -> List[str]:
        return sorted({src for _, src in self.series})

    def add(self, vm_id: str, source: str, series: SourceSeries) -> None:
        if (vm_id, source) in self.series:
            raise ValueError(f"series for ({vm_id!r}, {source!r}) already set")
        if self.series and len(series) != self.n_intervals:
            raise ValueError(
                f"series length {len(series)} != trace length {self.n_intervals}")
        self.series[(vm_id, source)] = series

    def load_at(self, vm_id: str, t: int) -> Dict[str, LoadVector]:
        """Per-source load on a VM at interval ``t`` (O(own series))."""
        rows = self._index_by_vm().get(vm_id)
        if not rows:
            raise KeyError(f"no series for VM {vm_id!r}")
        return {src: s.at(t) for src, s in rows}

    def aggregate_at(self, vm_id: str, t: int) -> LoadVector:
        """Combined load on a VM at interval ``t`` (all sources merged)."""
        return LoadVector.combine(self.load_at(vm_id, t).values())

    def total_rps(self, t: int) -> float:
        """System-wide request rate at interval ``t``."""
        return float(sum(s.rps[t] for s in self.series.values()))

    def dominant_source(self, vm_id: str, t: int) -> str:
        """The region sending the most requests to ``vm_id`` at ``t``."""
        loads = self.load_at(vm_id, t)
        return max(loads, key=lambda src: loads[src].rps)

    def slice(self, start: int, stop: int) -> "WorkloadTrace":
        """A sub-trace over interval range [start, stop)."""
        if not 0 <= start <= stop <= self.n_intervals:
            raise ValueError(f"bad slice [{start}, {stop}) for "
                             f"{self.n_intervals} intervals")
        out = WorkloadTrace(interval_s=self.interval_s)
        for key, s in self.series.items():
            out.series[key] = SourceSeries(
                s.rps[start:stop], s.bytes_per_req[start:stop],
                s.cpu_time_per_req[start:stop])
        return out

    def scaled(self, factor: float) -> "WorkloadTrace":
        """The whole trace at ``factor`` times the request rate."""
        out = WorkloadTrace(interval_s=self.interval_s)
        for key, s in self.series.items():
            out.series[key] = s.scaled(factor)
        return out

    # -- persistence -----------------------------------------------------------
    def save(self, path) -> None:
        """Serialize to a ``.npz`` archive (portable, dependency-free)."""
        arrays = {"__interval_s__": np.array([self.interval_s])}
        for (vm_id, src), s in self.series.items():
            base = f"{vm_id}\x1f{src}"
            arrays[f"{base}\x1frps"] = s.rps
            arrays[f"{base}\x1fbpr"] = s.bytes_per_req
            arrays[f"{base}\x1fcpr"] = s.cpu_time_per_req
        np.savez_compressed(path, **arrays)

    @staticmethod
    def load(path) -> "WorkloadTrace":
        """Inverse of :meth:`save`."""
        with np.load(path) as data:
            trace = WorkloadTrace(
                interval_s=float(data["__interval_s__"][0]))
            streams = {}
            for key in data.files:
                if key == "__interval_s__":
                    continue
                vm_id, src, kind = key.split("\x1f")
                streams.setdefault((vm_id, src), {})[kind] = data[key]
            for (vm_id, src), parts in sorted(streams.items()):
                trace.add(vm_id, src, SourceSeries(
                    rps=parts["rps"], bytes_per_req=parts["bpr"],
                    cpu_time_per_req=parts["cpr"]))
        return trace
