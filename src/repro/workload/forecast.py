"""Load forecasting: the "expected incoming load" of paper §III.B.

The paper's decision maker anticipates "the VM requirements given an
expected incoming load".  In the experiment harness the schedulers are
handed the current interval's actual load (the gateway effectively measures
it as the round starts); this module provides the honest alternative — a
forecaster that sees only completed intervals:

* **seasonal-naive** component: web traffic is strongly diurnal, so the
  same time yesterday is an excellent predictor once a full period of
  history exists;
* **EWMA** component: tracks the current level before a full day of
  history is available and adapts to level shifts;
* the blend weights the seasonal term by how much seasonal history exists.

Request-mix features (bytes/req, CPU-time/req) move slowly and are
forecast by EWMA only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..sim.demand import LoadVector
from .traces import WorkloadTrace

__all__ = ["LoadForecaster", "forecast_loads"]


@dataclass
class _SeriesState:
    """Forecast state for one (VM, source) stream."""

    level_rps: Optional[float] = None
    level_bytes: Optional[float] = None
    level_cpu: Optional[float] = None
    history_rps: list = field(default_factory=list)


@dataclass
class LoadForecaster:
    """Seasonal-naive + EWMA one-step-ahead load forecaster.

    Parameters
    ----------
    period:
        Seasonal period in intervals (144 for 10-minute rounds over a day).
    alpha:
        EWMA smoothing factor for the level terms.
    seasonal_weight:
        Weight of the seasonal-naive term once a full period of history
        exists (ramped linearly while history accumulates).
    """

    period: int = 144
    alpha: float = 0.35
    seasonal_weight: float = 0.65
    _state: Dict[Tuple[str, str], _SeriesState] = field(default_factory=dict)
    _n_observed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if not 0.0 <= self.seasonal_weight <= 1.0:
            raise ValueError("seasonal_weight must lie in [0, 1]")

    @property
    def n_observed(self) -> int:
        """Completed intervals seen so far."""
        return self._n_observed

    def observe(self, vm_id: str, source: str, load: LoadVector) -> None:
        """Feed one completed interval's measured load."""
        state = self._state.setdefault((vm_id, source), _SeriesState())
        a = self.alpha

        def ewma(level: Optional[float], x: float) -> float:
            return x if level is None else (1 - a) * level + a * x

        state.level_rps = ewma(state.level_rps, load.rps)
        state.level_bytes = ewma(state.level_bytes, load.bytes_per_req)
        state.level_cpu = ewma(state.level_cpu, load.cpu_time_per_req)
        state.history_rps.append(load.rps)
        if len(state.history_rps) > 2 * self.period:
            del state.history_rps[:-2 * self.period]

    def observe_interval(self, trace: WorkloadTrace, t: int) -> None:
        """Feed every stream of interval ``t`` from a trace."""
        for (vm_id, source), series in trace.series.items():
            self.observe(vm_id, source, series.at(t))
        self._n_observed += 1

    def predict(self, vm_id: str, source: str) -> Optional[LoadVector]:
        """One-step-ahead forecast; None for never-seen streams."""
        state = self._state.get((vm_id, source))
        if state is None or state.level_rps is None:
            return None
        rps = state.level_rps
        n = len(state.history_rps)
        if n >= self.period:
            seasonal = state.history_rps[n - self.period]
            # Ramp the seasonal weight in over the second period.
            maturity = min(1.0, (n - self.period + 1) / self.period)
            w = self.seasonal_weight * maturity
            rps = (1 - w) * rps + w * seasonal
        return LoadVector(rps=max(0.0, rps),
                          bytes_per_req=max(0.0, state.level_bytes),
                          cpu_time_per_req=max(0.0, state.level_cpu))


def forecast_loads(forecaster: LoadForecaster, trace: WorkloadTrace,
                   vm_ids=None) -> Dict[str, Dict[str, LoadVector]]:
    """Per-VM, per-source forecasts for the next interval.

    Streams without history fall back to zero load with the trace's first
    request mix (the scheduler then books conservative defaults).
    """
    vm_ids = list(vm_ids) if vm_ids is not None else trace.vm_ids
    out: Dict[str, Dict[str, LoadVector]] = {}
    for vm_id in vm_ids:
        per_source: Dict[str, LoadVector] = {}
        # O(own series) via the trace's per-VM index, not O(total series).
        for src, series in trace.series_of(vm_id):
            pred = forecaster.predict(vm_id, src)
            if pred is None:
                pred = LoadVector(rps=0.0,
                                  bytes_per_req=float(series.bytes_per_req[0]),
                                  cpu_time_per_req=float(
                                      series.cpu_time_per_req[0]))
            per_source[src] = pred
        out[vm_id] = per_source
    return out
