"""Li-BCN-like workload generation.

The Li-BCN 2010 workload [Berral et al., tech report 1099, UPC] collects
traces from real hosted web-sites "offering from file hosting to
image-gallery services".  The traces themselves are not redistributable, so
this module generates synthetic equivalents that reproduce the
characteristics the scheduler actually observes:

* a service-type-specific request mix (bytes/request and CPU-time/request);
* a diurnal request-rate cycle, phase-shifted per client region (timezones);
* autocorrelated noise and occasional short bursts;
* optional flash crowds (the paper keeps one at minutes 70-90);
* arbitrary scaling, as the paper "properly scaled [the workload] to create
  heavy load for each experiment".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .patterns import (TIMEZONE_OFFSETS_H, FlashCrowd, apply_flash_crowds,
                       ar1_noise, diurnal_profile, poisson_bursts)
from .traces import SourceSeries, WorkloadTrace

__all__ = ["ServiceProfile", "SERVICE_PROFILES", "LiBCNGenerator"]


@dataclass(frozen=True)
class ServiceProfile:
    """Static request-mix characteristics of one web-service type."""

    name: str
    #: Mean response size, bytes (heavy-tailed around this).
    mean_bytes_per_req: float
    #: Mean CPU seconds per request without contention.
    mean_cpu_time_per_req: float
    #: Baseline request rate at profile scale 1.0, requests/s.
    base_rps: float
    #: Hour of local-time peak activity.
    peak_hour: float = 20.0
    #: Relative day-to-night amplitude (trough fraction of peak).
    trough_fraction: float = 0.25

    def __post_init__(self) -> None:
        if min(self.mean_bytes_per_req, self.mean_cpu_time_per_req,
               self.base_rps) < 0:
            raise ValueError("profile means must be non-negative")


#: Service mixes inspired by the Li-BCN site catalogue.
SERVICE_PROFILES: Dict[str, ServiceProfile] = {
    "file-hosting": ServiceProfile(
        name="file-hosting", mean_bytes_per_req=24_000.0,
        mean_cpu_time_per_req=0.020, base_rps=1.2, peak_hour=21.0),
    "image-gallery": ServiceProfile(
        name="image-gallery", mean_bytes_per_req=9_500.0,
        mean_cpu_time_per_req=0.045, base_rps=2.5, peak_hour=20.0),
    "blog": ServiceProfile(
        name="blog", mean_bytes_per_req=3_000.0,
        mean_cpu_time_per_req=0.030, base_rps=3.5, peak_hour=19.0),
    "forum": ServiceProfile(
        name="forum", mean_bytes_per_req=2_200.0,
        mean_cpu_time_per_req=0.060, base_rps=2.8, peak_hour=22.0),
    "e-commerce": ServiceProfile(
        name="e-commerce", mean_bytes_per_req=5_500.0,
        mean_cpu_time_per_req=0.080, base_rps=1.8, peak_hour=18.0,
        trough_fraction=0.35),
}


@dataclass
class LiBCNGenerator:
    """Synthetic Li-BCN-style trace generator.

    Parameters
    ----------
    interval_s:
        Seconds per scheduling interval.
    rng:
        Seeded generator; the trace is a deterministic function of it.
    region_weights:
        Relative client population per region; defaults to equal.
    noise_sigma, burst_rate_per_day:
        Stochastic texture knobs (see :mod:`repro.workload.patterns`).
    """

    rng: np.random.Generator
    interval_s: float = 600.0
    region_weights: Optional[Mapping[str, float]] = None
    noise_sigma: float = 0.10
    burst_rate_per_day: float = 2.0

    def source_series(self, profile: ServiceProfile, region: str,
                      n_intervals: int, scale: float = 1.0,
                      region_weight: float = 1.0,
                      flash_crowds: Sequence[FlashCrowd] = (),
                      start_hour: float = 0.0) -> SourceSeries:
        """One (VM, region) load series.

        ``scale`` multiplies the request rate (the paper's workload scaling);
        ``region_weight`` models differently sized client populations.
        """
        if n_intervals < 0:
            raise ValueError("n_intervals must be non-negative")
        tz = TIMEZONE_OFFSETS_H.get(region, 0.0)
        shape = diurnal_profile(n_intervals, self.interval_s,
                                peak_hour=profile.peak_hour, tz_offset_h=tz,
                                trough_fraction=profile.trough_fraction,
                                start_hour=start_hour)
        noise = 1.0 + ar1_noise(n_intervals, self.rng, sigma=self.noise_sigma)
        bursts = poisson_bursts(n_intervals, self.rng,
                                rate_per_day=self.burst_rate_per_day,
                                interval_s=self.interval_s)
        rps = profile.base_rps * scale * region_weight * shape
        rps = np.maximum(0.0, rps * noise * bursts)
        rps = apply_flash_crowds(rps, self.interval_s, flash_crowds)

        # Request mix varies mildly over time (content popularity churn):
        # lognormal multipliers with small sigma, autocorrelated.
        bpr_mult = np.exp(ar1_noise(n_intervals, self.rng, sigma=0.15))
        cpr_mult = np.exp(ar1_noise(n_intervals, self.rng, sigma=0.10))
        bytes_per_req = profile.mean_bytes_per_req * bpr_mult
        cpu_time_per_req = profile.mean_cpu_time_per_req * cpr_mult
        return SourceSeries(rps=rps, bytes_per_req=bytes_per_req,
                            cpu_time_per_req=cpu_time_per_req)

    def trace(self, vm_profiles: Mapping[str, ServiceProfile],
              regions: Sequence[str], n_intervals: int,
              scale: float = 1.0,
              vm_region_affinity: Optional[Mapping[str, str]] = None,
              affinity_boost: float = 3.0,
              flash_crowds: Sequence[FlashCrowd] = (),
              start_hour: float = 0.0) -> WorkloadTrace:
        """A full multi-VM, multi-region workload trace.

        ``vm_region_affinity`` marks each VM's home region (where most of its
        clients live); that region's weight is multiplied by
        ``affinity_boost``, which is what makes "follow the load" placement
        meaningful.
        """
        weights = dict(self.region_weights or {r: 1.0 for r in regions})
        trace = WorkloadTrace(interval_s=self.interval_s)
        affinity = vm_region_affinity or {}
        for vm_id, profile in vm_profiles.items():
            home = affinity.get(vm_id)
            for region in regions:
                w = weights.get(region, 1.0)
                if home is not None and region == home:
                    w *= affinity_boost
                trace.add(vm_id, region, self.source_series(
                    profile, region, n_intervals, scale=scale,
                    region_weight=w, flash_crowds=flash_crowds,
                    start_hour=start_hour))
        return trace

    def rotating_trace(self, vm_id: str, profile: ServiceProfile,
                       regions: Sequence[str], n_intervals: int,
                       scale: float = 1.0, dominance: float = 6.0,
                       start_hour: float = 0.0) -> WorkloadTrace:
        """A trace whose dominant load source rotates around the regions.

        Used by the follow-the-load sanity check (paper Figure 5): the VM
        should chase the region currently generating most requests.
        """
        if dominance <= 1.0:
            raise ValueError("dominance must exceed 1")
        trace = WorkloadTrace(interval_s=self.interval_s)
        n_regions = len(regions)
        if n_regions == 0:
            raise ValueError("need at least one region")
        seg = max(1, n_intervals // n_regions)
        t_idx = np.arange(n_intervals)
        for k, region in enumerate(regions):
            base = self.source_series(profile, region, n_intervals,
                                      scale=scale, start_hour=start_hour)
            active = (t_idx // seg) % n_regions == k
            rps = np.where(active, base.rps * dominance, base.rps)
            trace.add(vm_id, region, SourceSeries(
                rps=rps, bytes_per_req=base.bytes_per_req,
                cpu_time_per_req=base.cpu_time_per_req))
        return trace
