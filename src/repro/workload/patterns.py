"""Temporal load patterns: diurnal cycles, noise, bursts, flash crowds.

The paper drives its experiments with the Li-BCN 2010 workload — traces from
real hosted web-sites — scaled to stress the testbed, replayed with different
scalings and timezone phase shifts per client region, and containing a flash
crowd ("minutes 70-90, for about 15 minutes") kept for realism.  This module
provides the primitive shapes those traces exhibit; :mod:`repro.workload.libcn`
composes them into full traces.

All generators are deterministic given a :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "diurnal_profile",
    "ar1_noise",
    "poisson_bursts",
    "FlashCrowd",
    "apply_flash_crowds",
]

#: Timezone offsets (hours ahead of UTC) for the paper's four regions.
TIMEZONE_OFFSETS_H = {"BRS": 10.0, "BNG": 5.5, "BCN": 1.0, "BST": -5.0}


def diurnal_profile(n_intervals: int, interval_s: float,
                    peak_hour: float = 20.0, tz_offset_h: float = 0.0,
                    trough_fraction: float = 0.25,
                    start_hour: float = 0.0) -> np.ndarray:
    """Smooth daily activity profile in [trough_fraction, 1].

    A raised cosine peaking at ``peak_hour`` *local* time; ``tz_offset_h``
    shifts the local clock relative to simulation time, which is how the
    paper "simulates the effect of different time zones and load time
    patterns".
    """
    if n_intervals < 0:
        raise ValueError("n_intervals must be non-negative")
    if not 0.0 <= trough_fraction <= 1.0:
        raise ValueError("trough_fraction must lie in [0, 1]")
    t_h = start_hour + np.arange(n_intervals) * interval_s / 3600.0
    local_h = t_h + tz_offset_h
    phase = 2.0 * np.pi * (local_h - peak_hour) / 24.0
    shape = 0.5 * (1.0 + np.cos(phase))  # 1 at peak, 0 at peak+12h
    return trough_fraction + (1.0 - trough_fraction) * shape


def ar1_noise(n_intervals: int, rng: np.random.Generator,
              sigma: float = 0.08, rho: float = 0.8) -> np.ndarray:
    """Zero-mean AR(1) multiplicative noise with stationary std ``sigma``.

    Successive web-traffic samples are strongly autocorrelated; white noise
    would make the learned models look unrealistically bad.
    """
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must lie in [0, 1)")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if n_intervals == 0:
        return np.zeros(0)
    innov_sigma = sigma * np.sqrt(1.0 - rho * rho)
    eps = rng.normal(0.0, innov_sigma, size=n_intervals)
    out = np.empty(n_intervals)
    out[0] = rng.normal(0.0, sigma)
    for i in range(1, n_intervals):
        out[i] = rho * out[i - 1] + eps[i]
    return out


def poisson_bursts(n_intervals: int, rng: np.random.Generator,
                   rate_per_day: float = 2.0, interval_s: float = 600.0,
                   magnitude: float = 0.6,
                   duration_intervals: int = 2) -> np.ndarray:
    """Occasional short multiplicative bursts (social-media links, crawls).

    Returns a multiplier array >= 1.
    """
    if rate_per_day < 0 or magnitude < 0:
        raise ValueError("rate and magnitude must be non-negative")
    mult = np.ones(n_intervals)
    p = rate_per_day * interval_s / 86400.0
    starts = np.flatnonzero(rng.random(n_intervals) < p)
    for s in starts:
        end = min(n_intervals, s + max(1, duration_intervals))
        mult[s:end] += magnitude * rng.random()
    return mult


@dataclass(frozen=True)
class FlashCrowd:
    """A flash-crowd event: load multiplied by ``factor`` over a window.

    The paper's generator produced one in minutes 70-90 "which clearly
    exceeds the capacity of the system"; they kept it for realism.
    """

    start_minute: float
    end_minute: float
    factor: float

    def __post_init__(self) -> None:
        if self.end_minute <= self.start_minute:
            raise ValueError("end_minute must exceed start_minute")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")

    def multiplier(self, n_intervals: int, interval_s: float) -> np.ndarray:
        t_min = np.arange(n_intervals) * interval_s / 60.0
        active = (t_min >= self.start_minute) & (t_min < self.end_minute)
        return np.where(active, self.factor, 1.0)


#: The paper's flash crowd: minutes 70-90, far beyond system capacity.
PAPER_FLASH_CROWD = FlashCrowd(start_minute=70.0, end_minute=90.0, factor=4.0)


def apply_flash_crowds(series: np.ndarray, interval_s: float,
                       crowds) -> np.ndarray:
    """Apply flash-crowd multipliers to a request-rate series."""
    out = np.asarray(series, dtype=float).copy()
    for crowd in crowds:
        out *= crowd.multiplier(len(out), interval_s)
    return out
