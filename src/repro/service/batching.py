"""Request micro-batching: coalesce concurrent place queries per session.

Every ``POST /place`` lands on the :class:`MicroBatcher` queue as a
pending item with its own :class:`concurrent.futures.Future`.  A single
worker thread drains the queue in batches — up to ``max_batch`` items or
``max_wait_ms`` after the first, whichever comes first — groups the batch
by session, and answers each group against **one** warm
:class:`~repro.core.bestfit.SchedulingRound`: the round's request cache,
host base and single vectorized ``required_resources_batch`` call
amortize across every query of the batch (and across batches, until the
session steps).  Per-query packing is unchanged — each VM is still its
own single-VM problem, so coalescing is invisible in the results
(bit-identical to a cold per-request round) and only the throughput
differs.

The single worker also serializes scoring against :meth:`Session.step`
mutations via the session lock, so a ``place`` never observes a
half-stepped fleet.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .state import SessionStore

__all__ = ["MicroBatcher", "BatcherStats"]

_SHUTDOWN = object()


@dataclass
class _Pending:
    session: str
    vm_ids: Tuple[str, ...]
    future: Future


@dataclass
class BatcherStats:
    """Counters the healthz/report endpoints expose."""

    requests: int = 0
    batches: int = 0
    max_batch: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock,
                                 repr=False)

    def record(self, batch_size: int) -> None:
        with self.lock:
            self.requests += batch_size
            self.batches += 1
            self.max_batch = max(self.max_batch, batch_size)

    def snapshot(self) -> Dict[str, float]:
        with self.lock:
            mean = self.requests / self.batches if self.batches else 0.0
            return {"requests": self.requests, "batches": self.batches,
                    "max_batch": self.max_batch, "mean_batch": mean}


class MicroBatcher:
    """Queue + worker coalescing concurrent place queries.

    Parameters
    ----------
    store:
        The session store queries resolve against.
    max_batch:
        Hard cap on queries per coalesced batch.
    max_wait_ms:
        How long the worker waits for stragglers after the first query
        of a batch arrives.  Zero still coalesces whatever is already
        queued (the drain is opportunistic, never blocking beyond the
        deadline).
    """

    def __init__(self, store: SessionStore, max_batch: int = 32,
                 max_wait_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.store = store
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.stats = BatcherStats()
        self._queue: "queue.Queue" = queue.Queue()
        #: Guards the closed flag: close() must be test-and-set (two
        #: racing closers would otherwise both join the worker) and
        #: submit() must not observe a torn close mid-check.
        self._lock = threading.Lock()
        self._closed = False
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-place-batcher")
        self._worker.start()

    # -- client side -----------------------------------------------------------
    def submit(self, session: str, vm_ids: Sequence[str]) -> Future:
        """Enqueue one place query; the future resolves to its results."""
        with self._lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
        if not vm_ids:
            raise ValueError("vm_ids must be non-empty")
        pending = _Pending(session=session, vm_ids=tuple(vm_ids),
                           future=Future())
        self._queue.put(pending)
        return pending.future

    def place(self, session: str, vm_ids: Sequence[str],
              timeout: Optional[float] = None) -> Dict[str, dict]:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(session, vm_ids).result(timeout=timeout)

    def close(self, timeout: float = 5.0) -> None:
        """Drain and stop the worker; later submits raise."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)

    # -- worker side -----------------------------------------------------------
    def _collect(self) -> Optional[List[_Pending]]:
        """Block for the first item, then drain until batch/deadline."""
        first = self._queue.get()
        if first is _SHUTDOWN:
            return None
        batch = [first]
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0:
                    item = self._queue.get_nowait()
                else:
                    item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Re-post so the outer loop terminates after this batch.
                self._queue.put(_SHUTDOWN)
                break
            batch.append(item)
        return batch

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            self.stats.record(len(batch))
            groups: Dict[str, List[_Pending]] = {}
            for pending in batch:
                groups.setdefault(pending.session, []).append(pending)
            for name, group in groups.items():
                self._execute_group(name, group)

    def _execute_group(self, name: str, group: List[_Pending]) -> None:
        try:
            session = self.store.get(name)
        except KeyError as exc:
            for pending in group:
                pending.future.set_exception(exc)
            return
        with session.lock:
            try:
                round_ = session.current_round()
            except Exception as exc:
                for pending in group:
                    pending.future.set_exception(exc)
                return
            for pending in group:
                try:
                    pending.future.set_result(
                        session.place(pending.vm_ids, round_=round_))
                except Exception as exc:
                    pending.future.set_exception(exc)
