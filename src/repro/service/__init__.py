"""Scheduling-as-a-service: the warm placement server.

The offline pipeline (CLI artifacts, scenario runs) rebuilds fleets,
traces and models per invocation; this package keeps them resident in a
long-lived process and answers placement queries over HTTP — the paper's
controller as a service.  See :mod:`repro.service.state` for the warm
state, :mod:`repro.service.batching` for request micro-batching and
:mod:`repro.service.app` for the endpoints; ``python -m repro.cli serve``
starts it.
"""

from .app import PlacementService, make_server, serve
from .batching import MicroBatcher
from .protocol import ProtocolError
from .state import (ModelRegistry, Session, SessionStore,
                    session_from_scenario)

__all__ = ["PlacementService", "make_server", "serve", "MicroBatcher",
           "ProtocolError", "ModelRegistry", "Session", "SessionStore",
           "session_from_scenario"]
