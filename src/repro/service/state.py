"""Warm server state: trained-model registry and live placement sessions.

The offline pipeline rebuilds fleet, trace and models on every invocation
and exits; the service keeps them resident:

* :class:`ModelRegistry` — a lock-guarded cache of trained
  :class:`~repro.ml.predictors.ModelSet` instances, keyed by the scenario
  engine's :func:`~repro.experiments.engine._training_key` (every knob
  that shapes a training run), so two sessions or scenario runs with
  identical training specs share one model set and train at most once.
  Safe for concurrent readers: all ``ModelSet`` predict paths are pure
  (fit-time-only mutation), so a published model set never changes.
* :class:`Session` — one live fleet: a :class:`MultiDCSystem`, its
  :class:`WorkloadTrace`, a clock ``t``, an estimator, and the cached
  :class:`~repro.core.bestfit.SchedulingRound` of the current interval.
  Placement queries share that round (request cache, host base, one
  vectorized ``required_resources_batch`` call); mutations (:meth:`step`)
  go through the session lock and invalidate it.
* :class:`SessionStore` — named sessions, created from registered
  scenario specs (fleet + workload + training reuse the exact
  declarative machinery of :func:`repro.experiments.engine.run_scenario`).

Per-query placement semantics are pinned to the offline path: a ``place``
for VM ``v`` at interval ``t`` returns exactly what
``SchedulingRound(system, trace, t, estimator).best_fit(scope_vms=[v])``
returns — the differential tests assert bit-identical assignments.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bestfit import SchedulingRound
from ..core.estimators import (Estimator, MLEstimator, ObservedEstimator,
                               OracleEstimator)
from ..core.model import ObjectiveWeights
from ..experiments.engine import (REGISTRY, ScenarioSpec, TrainingSpec,
                                  _train, _training_key)
from ..ml.predictors import ModelSet
from ..sim.engine import RunHistory
from ..sim.monitor import Monitor
from ..sim.multidc import MultiDCSystem
from ..workload.traces import WorkloadTrace

__all__ = ["ModelRegistry", "Session", "SessionStore",
           "session_from_scenario"]


class ModelRegistry:
    """Lock-guarded cache of trained model sets, keyed on training knobs.

    ``get_or_train`` is the single entry point: a hit returns the shared
    ``(ModelSet, Monitor)`` pair immediately; a miss trains under a
    per-key lock, so concurrent misses for the same key train exactly
    once while different keys train in parallel.  ``seed`` publishes an
    already-trained set (scenario runs feed their models back so later
    sessions reuse them warm).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._models: Dict[str, Tuple[ModelSet, Optional[Monitor]]] = {}
        self._inflight: Dict[str, threading.Lock] = {}
        self.trainings = 0  # cache misses that actually trained

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def key_of(self, training: TrainingSpec, spec: ScenarioSpec) -> str:
        return _training_key(training, spec)

    def get(self, training: TrainingSpec, spec: ScenarioSpec
            ) -> Optional[Tuple[ModelSet, Optional[Monitor]]]:
        with self._lock:
            return self._models.get(_training_key(training, spec))

    def seed(self, training: TrainingSpec, spec: ScenarioSpec,
             models: ModelSet, monitor: Optional[Monitor] = None) -> None:
        """Publish an externally trained model set under its key."""
        with self._lock:
            self._models.setdefault(_training_key(training, spec),
                                    (models, monitor))

    def get_or_train(self, training: TrainingSpec, spec: ScenarioSpec,
                     base_trace: Optional[WorkloadTrace] = None
                     ) -> Tuple[ModelSet, Optional[Monitor]]:
        key = _training_key(training, spec)
        with self._lock:
            hit = self._models.get(key)
            if hit is not None:
                return hit
            gate = self._inflight.setdefault(key, threading.Lock())
        with gate:
            # Double-check: another thread may have finished training
            # this key while we waited on its gate.
            with self._lock:
                hit = self._models.get(key)
                if hit is not None:
                    return hit
            models, monitor = _train(training, spec, base_trace)
            with self._lock:
                self._models[key] = (models, monitor)
                self._inflight.pop(key, None)
                self.trainings += 1
            return models, monitor


@dataclass
class Session:
    """One live fleet the server answers placement queries against.

    All access to the mutable pieces (``t``, the system's placement, the
    cached round) goes through :attr:`lock`; the micro-batcher and the
    HTTP handlers both take it.  ``place`` is a pure query — it never
    commits the returned assignment — while :meth:`step` advances the
    simulation clock exactly like one iteration of
    :func:`repro.sim.engine.run_simulation`.
    """

    name: str
    system: MultiDCSystem
    trace: WorkloadTrace
    estimator: Estimator
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    min_gain_eur: float = 0.0
    schedule_on_step: bool = True
    t: int = 0
    history: RunHistory = field(default_factory=RunHistory)
    lock: threading.RLock = field(default_factory=threading.RLock,
                                  repr=False)
    created_at: float = field(default_factory=time.time)
    #: Placement queries answered (for /report and the healthz counters).
    n_place_queries: int = 0
    _round: Optional[SchedulingRound] = field(default=None, repr=False)

    # -- warm round ----------------------------------------------------------
    def current_round(self) -> SchedulingRound:
        """The (cached) scheduling round of the current interval.

        Shared by every placement query until :meth:`invalidate_round` —
        the request cache, host base and the one vectorized
        ``required_resources_batch`` call amortize across the round.
        Caller must hold :attr:`lock`.
        """
        if self.t >= self.trace.n_intervals:
            raise IndexError(
                f"session {self.name!r} exhausted its trace "
                f"(t={self.t}, n_intervals={self.trace.n_intervals})")
        if self._round is None:
            if isinstance(self.estimator, ObservedEstimator):
                self.estimator.refresh()
            self._round = SchedulingRound(self.system, self.trace, self.t,
                                          self.estimator,
                                          weights=self.weights)
        return self._round

    def invalidate_round(self) -> None:
        """Drop the warm round cache.  Caller must hold :attr:`lock`."""
        self._round = None

    # -- queries --------------------------------------------------------------
    def place(self, vm_ids: Sequence[str],
              round_: Optional[SchedulingRound] = None) -> Dict[str, dict]:
        """Score a placement for each VM against the warm round.

        Each VM is packed as its own single-VM problem — identical to the
        offline ``best_fit(scope_vms=[vm_id])`` — so concurrent queries
        for different VMs cannot observe each other's tentative commits.
        Caller must hold :attr:`lock` (the micro-batcher does).
        """
        if round_ is None:
            round_ = self.current_round()
        for vm_id in vm_ids:
            if vm_id not in self.system.vms:
                raise KeyError(f"unknown VM {vm_id!r} in session "
                               f"{self.name!r}")
        results = round_.pack_each(vm_ids,
                                   min_gain_eur=self.min_gain_eur)
        out: Dict[str, dict] = {}
        for vm_id, result in results.items():
            ev = result.evaluations.get(vm_id)
            entry = {"pm": result.assignment.get(vm_id), "t": self.t}
            if ev is not None:
                entry.update(profit_eur=ev.profit_eur, sla=ev.sla,
                             migration_seconds=ev.migration_seconds)
            out[vm_id] = entry
        self.n_place_queries += len(out)
        return out

    # -- mutation --------------------------------------------------------------
    def step(self, rounds: int = 1, schedule: Optional[bool] = None
             ) -> List[dict]:
        """Advance ``rounds`` intervals; one :func:`run_simulation` body each.

        With scheduling on (the default), each interval packs the full
        fleet through the warm round and applies the assignment before
        the interval is played — the paper's 10-minute decision loop,
        running inside the server.
        """
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if schedule is None:
            schedule = self.schedule_on_step
        reports: List[dict] = []
        with self.lock:
            for _ in range(rounds):
                if self.t >= self.trace.n_intervals:
                    raise IndexError(
                        f"session {self.name!r} exhausted its trace "
                        f"(t={self.t})")
                migrations = []
                self.system.apply_tariffs(self.t)
                if schedule:
                    round_ = self.current_round()
                    problem = round_.problem()
                    if problem.requests:
                        proposal = round_.pack(
                            problem,
                            min_gain_eur=self.min_gain_eur).assignment
                        if proposal:
                            migrations = self.system.apply_schedule(
                                proposal)
                report = self.system.step(self.trace, self.t,
                                          migrations=migrations)
                self.history.append(report)
                self.t += 1
                self.invalidate_round()
                reports.append({
                    "t": report.t,
                    "mean_sla": report.mean_sla,
                    "total_watts": report.total_watts,
                    "pms_on": report.n_pms_on,
                    "migrations": report.n_migrations,
                    "profit_eur": report.profit.profit_eur,
                })
        return reports

    # -- report ----------------------------------------------------------------
    def report(self) -> dict:
        with self.lock:
            placement = self.system.placement()
            out = {
                "session": self.name,
                "t": self.t,
                "n_intervals": self.trace.n_intervals,
                "n_vms": len(self.system.vms),
                "n_pms": sum(len(dc.pms)
                             for dc in self.system.datacenters),
                "n_placed": len(placement),
                "estimator": type(self.estimator).__name__,
                "place_queries": self.n_place_queries,
                "uptime_s": time.time() - self.created_at,
            }
            if len(self.history):
                s = self.history.summary()
                out["summary"] = {
                    "avg_sla": s.avg_sla,
                    "avg_watts": s.avg_watts,
                    "avg_eur_per_hour": s.avg_eur_per_hour,
                    "n_migrations": s.n_migrations,
                }
            return out


def session_from_scenario(name: str, scenario: str,
                          registry: ModelRegistry,
                          estimator: str = "ml",
                          min_gain_eur: float = 0.0,
                          **overrides) -> Session:
    """Build a live session from a registered scenario spec.

    The scenario's declarative fleet/workload/training specs are reused
    verbatim: the fleet builder yields the system, the workload spec the
    trace, and — for ``estimator='ml'`` — the training spec resolves
    through ``registry.get_or_train``, so every session with the same
    training knobs shares one warm model set.
    """
    spec = REGISTRY.spec(scenario, **overrides)
    if spec.fleet is None or spec.workload is None:
        raise ValueError(f"scenario {scenario!r} has no fleet/workload "
                         f"(analysis-only scenarios cannot be served)")
    system, fleet_trace = spec.fleet.build()
    trace = spec.workload.build(fleet_trace)
    if estimator == "oracle":
        est: Estimator = OracleEstimator()
    elif estimator == "ml":
        if spec.training is None:
            raise ValueError(f"scenario {scenario!r} has no training "
                             f"spec; use estimator='oracle'")
        base = trace if spec.training.workload is None else None
        models, _monitor = registry.get_or_train(spec.training, spec, base)
        mode = str(spec.params.get("sla_mode", "direct"))
        est = MLEstimator(models, sla_mode=mode)
    else:
        raise ValueError(f"unknown estimator {estimator!r} "
                         f"(expected 'ml' or 'oracle')")
    if spec.tariffs is not None:
        system.tariff_schedule = spec.tariffs.build(
            system, trace.n_intervals, trace.interval_s)
    return Session(name=name, system=system, trace=trace, estimator=est,
                   min_gain_eur=min_gain_eur)


class SessionStore:
    """Lock-guarded name -> :class:`Session` map."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._sessions: Dict[str, Session] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def get(self, name: str) -> Session:
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise KeyError(f"unknown session {name!r} "
                           f"(active: {self.names()})")
        return session

    def add(self, session: Session) -> Session:
        with self._lock:
            if session.name in self._sessions:
                raise ValueError(f"session {session.name!r} already exists")
            self._sessions[session.name] = session
        return session

    def create(self, name: str, scenario: str, registry: ModelRegistry,
               estimator: str = "ml", min_gain_eur: float = 0.0,
               **overrides) -> Session:
        # Build outside the store lock (training can take a while); the
        # add below still guarantees name uniqueness.
        session = session_from_scenario(name, scenario, registry,
                                        estimator=estimator,
                                        min_gain_eur=min_gain_eur,
                                        **overrides)
        return self.add(session)

    def remove(self, name: str) -> None:
        with self._lock:
            self._sessions.pop(name, None)
