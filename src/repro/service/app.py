"""The placement server: HTTP endpoints over the warm state.

:class:`PlacementService` is the transport-free application object — a
:class:`~repro.service.state.ModelRegistry`, a
:class:`~repro.service.state.SessionStore` and a
:class:`~repro.service.batching.MicroBatcher`, with one ``handle``
method mapping ``(method, path, query, body)`` to ``(status, payload)``.
Tests exercise it in-process; :func:`make_server` wraps it in a stdlib
:class:`~http.server.ThreadingHTTPServer` (one thread per connection, no
third-party runtime deps) for the CLI's ``repro serve``.

Endpoints
---------
``GET  /healthz``        liveness + registry/session/batcher counters
``GET  /report``         per-session report (``?session=NAME``)
``POST /sessions``       create a session from a registered scenario
``POST /place``          micro-batched placement query (pure, no commit)
``POST /step``           advance a session's simulation clock
``POST /scenarios/run``  run a registered scenario with warm models
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..experiments.engine import REGISTRY, run_scenario
from .batching import MicroBatcher
from .protocol import (PlaceRequest, ProtocolError, ScenarioRunRequest,
                       SessionRequest, StepRequest, decode_json,
                       encode_json)
from .state import ModelRegistry, SessionStore

__all__ = ["PlacementService", "make_server", "serve"]


class PlacementService:
    """Application object: warm state + route dispatch (transport-free)."""

    def __init__(self, max_batch: int = 32, max_wait_ms: float = 2.0,
                 place_timeout_s: float = 60.0) -> None:
        self.registry = ModelRegistry()
        self.sessions = SessionStore()
        self.batcher = MicroBatcher(self.sessions, max_batch=max_batch,
                                    max_wait_ms=max_wait_ms)
        self.place_timeout_s = place_timeout_s
        self.started_at = time.time()

    def close(self) -> None:
        self.batcher.close()

    # -- dispatch --------------------------------------------------------------
    def handle(self, method: str, path: str,
               query: Optional[Dict[str, str]] = None,
               body: Optional[Dict] = None) -> Tuple[int, Dict]:
        """Route one request; returns ``(http_status, payload_dict)``."""
        query = query or {}
        body = body or {}
        try:
            if method == "GET" and path == "/healthz":
                return 200, self._healthz()
            if method == "GET" and path == "/report":
                return 200, self._report(query)
            if method == "POST" and path == "/sessions":
                return 200, self._create_session(
                    SessionRequest.from_dict(body))
            if method == "POST" and path == "/place":
                return 200, self._place(PlaceRequest.from_dict(body))
            if method == "POST" and path == "/step":
                return 200, self._step(StepRequest.from_dict(body))
            if method == "POST" and path == "/scenarios/run":
                return 200, self._run_scenario(
                    ScenarioRunRequest.from_dict(body))
            raise ProtocolError(f"no route for {method} {path}",
                                status=404)
        except ProtocolError as exc:
            return exc.status, {"error": str(exc)}
        except KeyError as exc:
            return 404, {"error": str(exc.args[0]) if exc.args
                         else "not found"}
        except (ValueError, IndexError) as exc:
            return 400, {"error": str(exc)}

    # -- endpoints -------------------------------------------------------------
    def _healthz(self) -> Dict:
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started_at,
            "sessions": self.sessions.names(),
            "models": len(self.registry),
            "trainings": self.registry.trainings,
            "batcher": self.batcher.stats.snapshot(),
        }

    def _report(self, query: Dict[str, str]) -> Dict:
        name = query.get("session")
        if not name:
            raise ProtocolError("query parameter 'session' is required")
        return self.sessions.get(name).report()

    def _create_session(self, req: SessionRequest) -> Dict:
        try:
            session = self.sessions.create(
                req.name, req.scenario, self.registry,
                estimator=req.estimator, min_gain_eur=req.min_gain_eur,
                **req.overrides)
        except TypeError as exc:
            # Unknown factory override keywords surface as TypeError.
            raise ProtocolError(str(exc)) from exc
        # The store already published the session, so another request
        # could be stepping it: read the clock under its lock.
        with session.lock:
            return {"session": session.name, "scenario": req.scenario,
                    "t": session.t, "n_vms": len(session.system.vms),
                    "n_intervals": session.trace.n_intervals,
                    "estimator": req.estimator}

    def _place(self, req: PlaceRequest) -> Dict:
        future = self.batcher.submit(req.session, req.vm_ids)
        placements = future.result(timeout=self.place_timeout_s)
        return {"session": req.session, "placements": placements}

    def _step(self, req: StepRequest) -> Dict:
        session = self.sessions.get(req.session)
        reports = session.step(rounds=req.rounds, schedule=req.schedule)
        # step() released the lock before returning; re-read the clock
        # under it rather than racing a concurrent stepper (the reported
        # t is then *a* consistent post-step clock, matching the reports
        # only when this request's steps were the latest).
        with session.lock:
            t = session.t
        return {"session": req.session, "t": t,
                "reports": reports}

    def _run_scenario(self, req: ScenarioRunRequest) -> Dict:
        try:
            spec = REGISTRY.spec(req.name, **req.overrides)
        except TypeError as exc:
            raise ProtocolError(str(exc)) from exc
        models = None
        if req.reuse_models and spec.training is not None:
            hit = self.registry.get(spec.training, spec)
            if hit is not None:
                models = hit[0]
        result = run_scenario(spec, models=models)
        if spec.training is not None and result.models is not None:
            # Feed trained models back so later sessions/runs start warm.
            self.registry.seed(spec.training, spec, result.models,
                               result.monitor)
        payload = result.to_json_dict(include_series=req.include_series)
        payload["reused_models"] = models is not None
        return payload


# =============================================================================
# HTTP transport (stdlib ThreadingHTTPServer)
# =============================================================================

def _make_handler(service: PlacementService):
    class Handler(BaseHTTPRequestHandler):
        # Keep the server quiet; tests and the CLI report their own state.
        def log_message(self, format: str, *args) -> None:
            pass

        def _respond(self, status: int, payload: Dict) -> None:
            raw = encode_json(payload)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def _dispatch(self, method: str) -> None:
            parts = urlsplit(self.path)
            query = {k: v[-1] for k, v in
                     parse_qs(parts.query).items()}
            body: Dict = {}
            if method == "POST":
                length = int(self.headers.get("Content-Length") or 0)
                try:
                    body = decode_json(self.rfile.read(length))
                except ProtocolError as exc:
                    self._respond(exc.status, {"error": str(exc)})
                    return
            try:
                status, payload = service.handle(method, parts.path,
                                                 query=query, body=body)
            except Exception as exc:  # last-resort 500, never a traceback
                status, payload = 500, {"error": f"internal error: {exc}"}
            self._respond(status, payload)

        def do_GET(self) -> None:
            self._dispatch("GET")

        def do_POST(self) -> None:
            self._dispatch("POST")

    return Handler


def make_server(service: PlacementService, host: str = "127.0.0.1",
                port: int = 8421) -> ThreadingHTTPServer:
    """Bind the service to a stdlib threading HTTP server (not started)."""
    return ThreadingHTTPServer((host, port), _make_handler(service))


def serve(host: str = "127.0.0.1", port: int = 8421,
          preload: Tuple[Tuple[str, str], ...] = (),
          estimator: str = "ml", max_batch: int = 32,
          max_wait_ms: float = 2.0,
          ready: Optional[threading.Event] = None,
          quiet: bool = False) -> int:
    """Run the placement server until interrupted.

    ``preload`` is a tuple of ``(session_name, scenario_name)`` pairs
    created (models trained, fleets built) before the socket starts
    accepting, so the first request hits a warm server.  ``quiet``
    suppresses the informational banners (the server still serves).
    """
    say = (lambda *a, **k: None) if quiet else print
    service = PlacementService(max_batch=max_batch,
                               max_wait_ms=max_wait_ms)
    for session_name, scenario_name in preload:
        session = service.sessions.create(session_name, scenario_name,
                                          service.registry,
                                          estimator=estimator)
        say(f"[serve] preloaded session {session_name!r} "
            f"({scenario_name}: {len(session.system.vms)} VMs, "
            f"{session.trace.n_intervals} intervals)")
    server = make_server(service, host=host, port=port)
    say(f"[serve] listening on http://{host}:{server.server_port} "
        f"(max_batch={max_batch}, max_wait_ms={max_wait_ms})")
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        say("[serve] shutting down")
    finally:
        server.server_close()
        service.close()
    return 0
