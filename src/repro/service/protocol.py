"""Wire protocol: request validation and JSON response encoding.

Every endpoint speaks JSON objects.  Request bodies are validated into
plain dataclasses here — the handlers never touch raw dicts — and
responses are encoded through :func:`encode_json`, which routes every
payload through :func:`repro.experiments.engine.json_safe` so numpy
scalars and arrays (ubiquitous in reports and scenario extras) serialize
as native JSON instead of erroring.

:class:`ProtocolError` carries an HTTP status; handlers raise it for
anything client-shaped (bad JSON, missing fields, unknown names) and the
server maps it to a ``{"error": ...}`` body with that status.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..experiments.engine import json_safe

__all__ = ["ProtocolError", "PlaceRequest", "StepRequest",
           "SessionRequest", "ScenarioRunRequest", "encode_json",
           "decode_json"]


class ProtocolError(Exception):
    """Client-visible request error with an HTTP status code."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def decode_json(raw: bytes) -> Dict:
    """Parse a request body into a JSON object (400 on anything else)."""
    if not raw:
        return {}
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON body: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    return body


def encode_json(payload: object) -> bytes:
    """Serialize a response payload (numpy-safe, stable key order)."""
    return (json.dumps(json_safe(payload), sort_keys=True) + "\n").encode(
        "utf-8")


def _require_str(body: Dict, key: str) -> str:
    value = body.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"field {key!r} must be a non-empty string")
    return value


@dataclass(frozen=True)
class PlaceRequest:
    """``POST /place`` — score placements for one or more VMs."""

    session: str
    vm_ids: Tuple[str, ...]

    @classmethod
    def from_dict(cls, body: Dict) -> "PlaceRequest":
        session = _require_str(body, "session")
        vm_ids = body.get("vm_ids")
        if vm_ids is None:
            vm_ids = [_require_str(body, "vm_id")]
        if (not isinstance(vm_ids, list) or not vm_ids
                or not all(isinstance(v, str) for v in vm_ids)):
            raise ProtocolError(
                "field 'vm_ids' must be a non-empty list of strings")
        return cls(session=session, vm_ids=tuple(vm_ids))


@dataclass(frozen=True)
class StepRequest:
    """``POST /step`` — advance a session's simulation clock."""

    session: str
    rounds: int = 1
    schedule: Optional[bool] = None

    @classmethod
    def from_dict(cls, body: Dict) -> "StepRequest":
        session = _require_str(body, "session")
        rounds = body.get("rounds", 1)
        if not isinstance(rounds, int) or isinstance(rounds, bool) \
                or rounds < 1:
            raise ProtocolError("field 'rounds' must be a positive int")
        schedule = body.get("schedule")
        if schedule is not None and not isinstance(schedule, bool):
            raise ProtocolError("field 'schedule' must be a boolean")
        return cls(session=session, rounds=rounds, schedule=schedule)


@dataclass(frozen=True)
class SessionRequest:
    """``POST /sessions`` — create a session from a registered scenario."""

    name: str
    scenario: str
    estimator: str = "ml"
    min_gain_eur: float = 0.0
    overrides: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, body: Dict) -> "SessionRequest":
        name = _require_str(body, "name")
        scenario = _require_str(body, "scenario")
        estimator = body.get("estimator", "ml")
        if estimator not in ("ml", "oracle"):
            raise ProtocolError(
                "field 'estimator' must be 'ml' or 'oracle'")
        min_gain = body.get("min_gain_eur", 0.0)
        if not isinstance(min_gain, (int, float)) \
                or isinstance(min_gain, bool):
            raise ProtocolError("field 'min_gain_eur' must be a number")
        overrides = body.get("overrides", {})
        if not isinstance(overrides, dict):
            raise ProtocolError("field 'overrides' must be an object")
        return cls(name=name, scenario=scenario, estimator=estimator,
                   min_gain_eur=float(min_gain), overrides=dict(overrides))


@dataclass(frozen=True)
class ScenarioRunRequest:
    """``POST /scenarios/run`` — run a registered scenario warm."""

    name: str
    include_series: bool = False
    reuse_models: bool = True
    overrides: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, body: Dict) -> "ScenarioRunRequest":
        name = _require_str(body, "name")
        include_series = body.get("include_series", False)
        reuse_models = body.get("reuse_models", True)
        for key, value in (("include_series", include_series),
                           ("reuse_models", reuse_models)):
            if not isinstance(value, bool):
                raise ProtocolError(f"field {key!r} must be a boolean")
        overrides = body.get("overrides", {})
        if not isinstance(overrides, dict):
            raise ProtocolError("field 'overrides' must be an object")
        return cls(name=name, include_series=include_series,
                   reuse_models=reuse_models, overrides=dict(overrides))
