"""The tournament roster: every competing scheduler as an ArenaPolicy.

Each entry maps a :class:`~repro.arena.tournament.ScenarioDraw` to the
:class:`~repro.experiments.engine.SchedulerSpec` that drives one variant
of the draw's scenario, plus the metadata the tournament needs: whether
the policy needs trained models, whether it wants its own bagged
training run, the risk config of the calibrated variant, and an
instance-size ceiling for the exact solver (branch-and-bound is
O(hosts^VMs); cells above the ceiling are skipped and recorded, never
silently dropped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.hierarchical import DEFAULT_MIN_GAIN_EUR
from ..experiments.engine import SchedulerSpec
from ..ml.calibration import RiskConfig

__all__ = ["ArenaPolicy", "POLICIES", "DEFAULT_ROSTER", "SMOKE_ROSTER",
           "resolve_policies"]

#: The calibrated-ranking risk budget the PR 5 ladder settled on.
CALIBRATED_RISK = RiskConfig(coverage=0.5, spread_weight=2.0)

#: Largest draw (in VMs) the exact branch-and-bound policy will play.
EXACT_MAX_VMS = 8


@dataclass(frozen=True)
class ArenaPolicy:
    """One competitor: name, scheduler factory and tournament metadata."""

    name: str
    description: str
    build: Callable[["ScenarioDraw"], SchedulerSpec]
    #: Needs the scenario-level trained ModelSet (adds a TrainingSpec).
    needs_models: bool = False
    #: Wants its own bagged training run (shared by all bagged policies).
    bagged: bool = False
    risk: Optional[RiskConfig] = None
    #: Draws with more VMs than this are skipped (None = no ceiling).
    max_vms: Optional[int] = None

    def plays(self, n_vms: int) -> bool:
        return self.max_vms is None or n_vms <= self.max_vms


def _static(draw) -> SchedulerSpec:
    return SchedulerSpec("static")


def _bf(draw) -> SchedulerSpec:
    return SchedulerSpec("bf", params={"monitor_seed": draw.monitor_seed})


def _bf_ob(draw) -> SchedulerSpec:
    return SchedulerSpec("bf_ob", params={"monitor_seed": draw.monitor_seed,
                                          "overbook": 2.0})


def _bf_ml(draw) -> SchedulerSpec:
    return SchedulerSpec("bf_ml", min_gain_eur=DEFAULT_MIN_GAIN_EUR)


def _oracle(draw) -> SchedulerSpec:
    return SchedulerSpec("oracle", min_gain_eur=DEFAULT_MIN_GAIN_EUR)


def _hier_oracle(draw) -> SchedulerSpec:
    return SchedulerSpec("hierarchical", params={"estimator": "oracle"})


def _hier_ml(draw) -> SchedulerSpec:
    return SchedulerSpec("hierarchical", params={"estimator": "ml"})


def _online(draw) -> SchedulerSpec:
    return SchedulerSpec("online", params={"monitor_seed": draw.monitor_seed,
                                           "retrain_every": 4,
                                           "window": 1000,
                                           "min_samples": 40})


def _exact(draw) -> SchedulerSpec:
    return SchedulerSpec("exact", params={"max_nodes": 200_000})


POLICIES: Dict[str, ArenaPolicy] = {p.name: p for p in (
    ArenaPolicy("static", "never migrates (deploy-and-forget baseline)",
                _static),
    ArenaPolicy("bf", "Best-Fit on observed usage", _bf),
    ArenaPolicy("bf_ob", "Best-Fit with 2x overbooking", _bf_ob),
    ArenaPolicy("bf_ml", "ML Best-Fit, raw single models", _bf_ml,
                needs_models=True),
    ArenaPolicy("bf_ml_bagged", "ML Best-Fit, bagged ensembles", _bf_ml,
                needs_models=True, bagged=True),
    ArenaPolicy("bf_ml_calibrated",
                "ML Best-Fit, bagged + calibrated variance-penalized "
                "ranking", _bf_ml,
                needs_models=True, bagged=True, risk=CALIBRATED_RISK),
    ArenaPolicy("oracle", "Best-Fit with ground-truth models "
                          "(upper-bound reference)", _oracle),
    ArenaPolicy("hier_oracle", "two-layer hierarchical, oracle estimator",
                _hier_oracle),
    ArenaPolicy("hier_ml", "two-layer hierarchical, ML estimator",
                _hier_ml, needs_models=True),
    ArenaPolicy("online", "online-learning scheduler (bootstrapped, "
                          "retrains from its own monitor)", _online,
                needs_models=True),
    ArenaPolicy("exact", "branch-and-bound optimum per round "
                         "(small draws only)", _exact,
                max_vms=EXACT_MAX_VMS),
)}

#: Every policy — the full matrix (trains models, slowest).
DEFAULT_ROSTER: Tuple[str, ...] = tuple(POLICIES)

#: The training-free subset for CI smoke runs and quick local checks.
SMOKE_ROSTER: Tuple[str, ...] = ("static", "bf", "bf_ob", "oracle",
                                 "hier_oracle", "exact")


def resolve_policies(names: Sequence[str]) -> List[ArenaPolicy]:
    """Names -> policies, failing loudly with the known roster."""
    unknown = [n for n in names if n not in POLICIES]
    if unknown:
        raise ValueError(f"unknown arena polic"
                         f"{'ies' if len(unknown) > 1 else 'y'} "
                         f"{', '.join(repr(n) for n in unknown)} "
                         f"(known: {', '.join(POLICIES)})")
    if len(set(names)) != len(names):
        raise ValueError("duplicate policy names in the roster")
    if not names:
        raise ValueError("empty policy roster")
    return [POLICIES[n] for n in names]
