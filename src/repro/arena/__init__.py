"""Policy arena: adversarial scheduler tournaments over randomized draws.

The paper's claim is comparative — the ML-driven controller beats static
and heuristic placement on profit/SLA/energy — so this package makes
*comparison* data the way the scenario engine made experiments data:

* :mod:`repro.arena.invariants` — machine-checkable placement/simulation
  laws (placement legality, grant/capacity bounds, money and energy
  accounting balance, migration bookkeeping, batch/scalar parity),
  asserted on every tournament cell and importable by the regular test
  suite as plain assertion helpers.
* :mod:`repro.arena.policies` — the named roster of competing
  schedulers (static, BF, BF-OB, BF-ML raw/bagged/calibrated, oracle,
  hierarchical, online, exact) as :class:`ArenaPolicy` entries that map
  a scenario draw to a :class:`~repro.experiments.engine.SchedulerSpec`.
* :mod:`repro.arena.tournament` — :func:`run_tournament` runs the
  policy x draw matrix (surge timing, failure schedules, tariff shapes
  and fleet mixes all derived deterministically from one tournament seed
  via per-draw spawned RNG streams) and emits a ranked leaderboard
  artifact that ``scenarios diff`` can compare across commits.
* :mod:`repro.arena.fuzz` — mutates :class:`ScenarioSpec`s within
  validity bounds, and when an invariant breaks or a watched policy
  collapses below a floor, shrinks and writes a minimal repro spec JSON
  so every arena-found failure becomes a permanent regression test.
"""

from .invariants import (DEFAULT_TOL, PARITY_TOL, InvariantViolation,
                         assert_history_invariants, assert_invariants,
                         assert_pack_results_equal, assert_problems_equal,
                         assert_report_invariants,
                         assert_system_states_match, capacities_of,
                         check_history, check_report, check_spec_parity)
from .policies import (DEFAULT_ROSTER, POLICIES, SMOKE_ROSTER, ArenaPolicy,
                       resolve_policies)
from .tournament import (ArenaConfig, CellResult, DrawBounds, ScenarioDraw,
                         TournamentResult, draw_schedule, format_leaderboard,
                         run_tournament, spec_for_draw)
from .fuzz import (FuzzFinding, check_spec, mutate_spec, replay_repro,
                   run_fuzz, shrink_spec, write_repro)

__all__ = [
    # invariants
    "DEFAULT_TOL", "PARITY_TOL", "InvariantViolation", "capacities_of",
    "check_report", "check_history", "check_spec_parity",
    "assert_report_invariants", "assert_history_invariants",
    "assert_invariants", "assert_pack_results_equal",
    "assert_problems_equal", "assert_system_states_match",
    # policies
    "ArenaPolicy", "POLICIES", "DEFAULT_ROSTER", "SMOKE_ROSTER",
    "resolve_policies",
    # tournament
    "ArenaConfig", "DrawBounds", "ScenarioDraw", "CellResult",
    "TournamentResult", "draw_schedule", "spec_for_draw", "run_tournament",
    "format_leaderboard",
    # fuzz
    "FuzzFinding", "check_spec", "mutate_spec", "shrink_spec", "run_fuzz",
    "write_repro", "replay_repro",
]
