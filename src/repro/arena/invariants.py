"""Machine-checkable simulation laws shared by arena and unit tests.

Every tournament cell (and every fuzzed scenario) is audited against the
same laws the differential test suite enforces, stated once here:

**Report-level** (:func:`check_report`)

* placement legality — every placed VM sits on a known, powered-on host;
  the report's placement map, per-VM ``pm_id`` fields and per-PM VM
  counts agree; unplaced VMs earn nothing and hold nothing;
* grant laws — grants are nonnegative, memory is never granted above
  demand (CPU/bandwidth may *burst* above demand under work-conserving
  sharing, so no such bound exists for them), and with a capacity map
  the per-host grant sums never exceed capacity;
* QoS laws — SLA fields live in [0, 1] and ``sla`` equals
  ``sla_raw * (1 - blackout_fraction)``;
* accounting balance — per-VM revenues sum to the interval's revenue,
  per-PM energy costs sum to its energy cost, energy follows
  ``watts * interval / 3600``, powered-off hosts draw nothing, and a
  migration penalty implies a blacked-out placed VM;
* migration bookkeeping — each event lands its VM on the recorded
  target and ``inter_dc`` matches the locations.

**History-level** (:func:`check_history`) adds cross-interval laws: a
placed VM whose host changed was either migrated (event recorded) or
orphaned by a host failure (old host is down), and the run summary
equals the recomputed per-interval sums.

**Differential** — the batch/scalar agreement contracts from the PR 1-3
test suites live here as importable helpers
(:func:`assert_pack_results_equal`, :func:`assert_problems_equal`,
:func:`assert_system_states_match`) plus :func:`check_spec_parity`,
which replays a scenario spec's physics on both stepping paths and
returns the worst report divergence.

**Cross-shard conservation** (:func:`check_shard_conservation`) — the
sharded stepping path (:class:`repro.sim.sharding.ShardedFleet`) must
conserve the global KPIs across its per-DC decomposition: every additive
KPI of the interval (revenue, penalties, energy cost and Wh, watts,
powered-on hosts, aggregate rps) equals the sum over the per-shard
reductions, the mean SLA is the shard SLA mass over the reported VM
count, and no VM sits in two shards (the shard VM sets partition the
placement map).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..sim.fleet import report_max_abs_diff
from ..sim.machines import Resources
from ..sim.multidc import IntervalReport

__all__ = ["DEFAULT_TOL", "PARITY_TOL", "InvariantViolation",
           "capacities_of", "check_report", "check_history",
           "check_spec_parity", "assert_report_invariants",
           "assert_history_invariants", "assert_invariants",
           "check_shard_conservation", "assert_shard_conservation",
           "EVAL_FIELDS", "assert_pack_results_equal",
           "assert_problems_equal", "assert_system_states_match"]

#: Absolute-ish tolerance for accounting laws (sums over a fleet).
DEFAULT_TOL = 1e-6
#: Tolerance for batch-vs-scalar differential agreement.
PARITY_TOL = 1e-9

_DIMS = ("cpu", "mem", "bw")


class InvariantViolation(AssertionError):
    """One or more simulation laws were broken; the message lists them."""


def capacities_of(system) -> Dict[str, Resources]:
    """``{pm_id: capacity}`` for every host of a ``MultiDCSystem``."""
    return {pm.pm_id: pm.capacity
            for dc in system.datacenters for pm in dc.pms}


def _close(a: float, b: float, tol: float) -> bool:
    return abs(a - b) <= tol * (1.0 + max(abs(a), abs(b)))


# =============================================================================
# Report-level laws
# =============================================================================

def check_report(report: IntervalReport,
                 capacities: Optional[Mapping[str, Resources]] = None,
                 tol: float = DEFAULT_TOL) -> List[str]:
    """All violations of the per-interval laws (empty list = clean)."""
    v: List[str] = []

    def bad(msg: str) -> None:
        v.append(f"t={report.t}: {msg}")

    placed_per_pm: Dict[str, List[str]] = {}
    any_placed_blackout = False
    revenue_sum = 0.0
    for vm_id, s in report.vms.items():
        if s.vm_id != vm_id:
            bad(f"VM entry {vm_id!r} carries vm_id {s.vm_id!r}")
        for dim in _DIMS:
            if getattr(s.given, dim) < -tol:
                bad(f"VM {vm_id}: negative {dim} grant "
                    f"{getattr(s.given, dim)}")
            if getattr(s.required, dim) < -tol:
                bad(f"VM {vm_id}: negative {dim} demand "
                    f"{getattr(s.required, dim)}")
        # Memory never bursts: granted pages beyond the working set buy
        # nothing, so the allocator grants at most the demand.  (CPU and
        # bandwidth DO burst above demand on under-committed hosts.)
        if s.given.mem > s.required.mem + tol * (1.0 + abs(s.required.mem)):
            bad(f"VM {vm_id}: memory granted above demand "
                f"({s.given.mem} > {s.required.mem})")
        for name in ("sla", "sla_raw", "sla_process"):
            value = getattr(s, name)
            if not -tol <= value <= 1.0 + tol:
                bad(f"VM {vm_id}: {name}={value} outside [0, 1]")
        if not -tol <= s.blackout_fraction <= 1.0 + tol:
            bad(f"VM {vm_id}: blackout_fraction={s.blackout_fraction} "
                f"outside [0, 1]")
        if abs(s.sla - s.sla_raw * (1.0 - s.blackout_fraction)) > tol:
            bad(f"VM {vm_id}: sla {s.sla} != sla_raw*(1-blackout) "
                f"{s.sla_raw * (1.0 - s.blackout_fraction)}")
        if s.revenue_eur < -tol:
            bad(f"VM {vm_id}: negative revenue {s.revenue_eur}")
        revenue_sum += s.revenue_eur
        if s.pm_id:
            pm = report.pms.get(s.pm_id)
            if pm is None:
                bad(f"VM {vm_id} placed on unknown host {s.pm_id!r}")
            elif not pm.on:
                bad(f"VM {vm_id} placed on powered-off host {s.pm_id!r}")
            if report.placement.get(vm_id) != s.pm_id:
                bad(f"VM {vm_id}: placement map says "
                    f"{report.placement.get(vm_id)!r}, stats say "
                    f"{s.pm_id!r}")
            placed_per_pm.setdefault(s.pm_id, []).append(vm_id)
            if s.blackout_fraction > tol:
                any_placed_blackout = True
        else:
            # Unplaced (orphaned) VMs are fully unavailable: no grant,
            # no fulfilled SLA, no revenue, no entry in the placement.
            if s.sla > tol or s.revenue_eur > tol:
                bad(f"unplaced VM {vm_id} earns sla={s.sla} "
                    f"revenue={s.revenue_eur}")
            if any(getattr(s.given, dim) > tol for dim in _DIMS):
                bad(f"unplaced VM {vm_id} holds a grant {s.given}")
            if vm_id in report.placement:
                bad(f"unplaced VM {vm_id} appears in the placement map")

    for vm_id, pm_id in report.placement.items():
        if vm_id not in report.vms:
            bad(f"placement map names unreported VM {vm_id!r}")

    energy_cost_sum = 0.0
    for pm_id, p in report.pms.items():
        hosted = placed_per_pm.get(pm_id, [])
        if p.n_vms != len(hosted):
            bad(f"host {pm_id}: n_vms={p.n_vms} but {len(hosted)} VMs "
                f"report it as their host")
        if p.facility_watts < -tol or p.energy_wh < -tol:
            bad(f"host {pm_id}: negative power/energy")
        if not p.on and p.facility_watts > tol:
            bad(f"powered-off host {pm_id} draws {p.facility_watts} W")
        expected_wh = p.facility_watts * report.interval_s / 3600.0
        if not _close(p.energy_wh, expected_wh, tol):
            bad(f"host {pm_id}: energy_wh {p.energy_wh} != "
                f"watts*interval/3600 {expected_wh}")
        if p.sum_vm_cpu < -tol:
            bad(f"host {pm_id}: negative sum_vm_cpu")
        energy_cost_sum += p.energy_cost_eur
        if capacities is not None and pm_id in capacities:
            cap = capacities[pm_id]
            for dim in _DIMS:
                granted = sum(getattr(report.vms[vm].given, dim)
                              for vm in hosted)
                limit = getattr(cap, dim)
                if granted > limit + tol * (1.0 + limit):
                    bad(f"host {pm_id}: {dim} grants {granted} exceed "
                        f"capacity {limit}")
            if p.pm_cpu > cap.cpu + tol * (1.0 + cap.cpu):
                bad(f"host {pm_id}: pm_cpu {p.pm_cpu} exceeds capacity "
                    f"{cap.cpu}")

    profit = report.profit
    if not _close(revenue_sum, profit.revenue_eur, tol):
        bad(f"VM revenues sum to {revenue_sum}, profit says "
            f"{profit.revenue_eur}")
    if not _close(energy_cost_sum, profit.energy_cost_eur, tol):
        bad(f"host energy costs sum to {energy_cost_sum}, profit says "
            f"{profit.energy_cost_eur}")
    if profit.migration_penalty_eur < -tol:
        bad("negative migration penalty")
    if profit.migration_penalty_eur > tol and not any_placed_blackout:
        bad(f"migration penalty {profit.migration_penalty_eur} charged "
            f"with no blacked-out placed VM")

    for m in report.migrations:
        if m.seconds < 0:
            bad(f"migration {m.vm_id}: negative blackout seconds")
        if m.inter_dc != (m.from_location != m.to_location):
            bad(f"migration {m.vm_id}: inter_dc flag disagrees with "
                f"locations {m.from_location}->{m.to_location}")
        landed = report.vms.get(m.vm_id)
        if landed is None or landed.pm_id != m.to_pm:
            bad(f"migration {m.vm_id} recorded to {m.to_pm!r} but the VM "
                f"reports host "
                f"{landed.pm_id if landed else None!r}")
    return v


# =============================================================================
# History-level laws
# =============================================================================

def check_history(history,
                  capacities: Optional[Mapping[str, Resources]] = None,
                  tol: float = DEFAULT_TOL) -> List[str]:
    """Per-report laws plus cross-interval and summary-balance laws."""
    v: List[str] = []
    for report in history.reports:
        v.extend(check_report(report, capacities=capacities, tol=tol))

    # A placed VM whose host changed was either migrated (its event is in
    # the new interval's report) or orphaned by a host failure and
    # re-placed (then the old host is down in the new interval — the
    # injector runs before the scheduler, so the failure is visible).
    for prev, cur in zip(history.reports, history.reports[1:]):
        moved_events = {m.vm_id: m for m in cur.migrations}
        for vm_id, old_pm in prev.placement.items():
            new_pm = cur.placement.get(vm_id)
            if new_pm is None or new_pm == old_pm:
                continue
            event = moved_events.get(vm_id)
            old_host = cur.pms.get(old_pm)
            old_down = old_host is not None and not old_host.on
            if event is None and not old_down:
                v.append(f"t={cur.t}: VM {vm_id} moved "
                         f"{old_pm}->{new_pm} with no migration event "
                         f"and no failure of {old_pm}")
            elif event is not None and (event.from_pm != old_pm
                                        or event.to_pm != new_pm):
                v.append(f"t={cur.t}: VM {vm_id} event says "
                         f"{event.from_pm}->{event.to_pm} but placement "
                         f"moved {old_pm}->{new_pm}")

    if history.reports:
        s = history.summary()
        checks = (
            ("revenue_eur", s.revenue_eur,
             sum(r.profit.revenue_eur for r in history.reports)),
            ("energy_cost_eur", s.energy_cost_eur,
             sum(r.profit.energy_cost_eur for r in history.reports)),
            ("migration_penalty_eur", s.migration_penalty_eur,
             sum(r.profit.migration_penalty_eur for r in history.reports)),
            ("profit_eur", s.profit_eur,
             sum(r.profit.profit_eur for r in history.reports)),
            ("total_energy_wh", s.total_energy_wh,
             sum(r.total_energy_wh for r in history.reports)),
            ("n_migrations", float(s.n_migrations),
             float(sum(r.n_migrations for r in history.reports))),
            ("avg_sla", s.avg_sla,
             sum(r.mean_sla for r in history.reports)
             / len(history.reports)),
        )
        for name, summary_value, recomputed in checks:
            if not _close(summary_value, recomputed, tol):
                v.append(f"summary {name}={summary_value} but the "
                         f"reports sum to {recomputed}")
    return v


def assert_report_invariants(report, capacities=None,
                             tol: float = DEFAULT_TOL) -> None:
    """Raise :class:`InvariantViolation` listing every broken report law."""
    violations = check_report(report, capacities=capacities, tol=tol)
    if violations:
        raise InvariantViolation(
            f"{len(violations)} invariant violation(s):\n  "
            + "\n  ".join(violations))


def assert_history_invariants(history, capacities=None,
                              tol: float = DEFAULT_TOL) -> None:
    """Raise :class:`InvariantViolation` listing every broken run law."""
    violations = check_history(history, capacities=capacities, tol=tol)
    if violations:
        raise InvariantViolation(
            f"{len(violations)} invariant violation(s):\n  "
            + "\n  ".join(violations))


def assert_invariants(obj, capacities=None, tol: float = DEFAULT_TOL) -> None:
    """Dispatch on report vs history (anything with ``.reports``)."""
    if hasattr(obj, "reports"):
        assert_history_invariants(obj, capacities=capacities, tol=tol)
    else:
        assert_report_invariants(obj, capacities=capacities, tol=tol)


# =============================================================================
# Cross-shard conservation laws
# =============================================================================

def check_shard_conservation(sharded, metrics=None,
                             tol: float = DEFAULT_TOL) -> List[str]:
    """Violations of the sharded-stepping conservation laws (empty = clean).

    ``sharded`` is a :class:`repro.sim.sharding.ShardedFleet` *after* a
    step (its :attr:`last_shard_metrics` hold the per-shard reductions of
    that interval); ``metrics`` is the same interval's global KPIs — an
    :class:`~repro.sim.metrics.IntervalMetrics`, or an
    :class:`~repro.sim.multidc.IntervalReport` (reduced here via
    :func:`~repro.sim.metrics.metrics_of`), or ``None`` to audit only the
    structural laws.  Checked:

    * **partition** — the per-shard VM sets are pairwise disjoint and
      their union is exactly the system's placement map (no VM in two
      shards, none lost);
    * **shape** — one shard per datacenter, matching locations and PM
      counts;
    * **additivity** (with ``metrics``) — every additive global KPI
      equals the sum over shards, profit decomposes as revenue minus
      penalties minus energy cost, and the mean SLA is the shard SLA
      mass over the reported VM count (with unplaced traced VMs diluting
      it, never raising it).
    """
    v: List[str] = []
    shards = sharded.last_shard_metrics
    if not shards:
        return ["no shard metrics recorded (step the fleet first)"]

    # -- partition: no VM in two shards, none lost --------------------------
    seen: Dict[str, int] = {}
    for si, ids in enumerate(sharded.shard_vm_ids()):
        for vm_id in ids:
            if vm_id in seen:
                v.append(f"VM {vm_id!r} appears in shards {seen[vm_id]} "
                         f"and {si}")
            seen[vm_id] = si
    placement = sharded.system.placement()
    if set(seen) != set(placement):
        lost = sorted(set(placement) - set(seen))[:3]
        extra = sorted(set(seen) - set(placement))[:3]
        v.append(f"shard VM union != placement map "
                 f"(lost={lost}, extra={extra})")

    # -- shape: one shard per DC, matching locations and PM counts ----------
    dcs = sharded.system.datacenters
    if len(shards) != len(dcs):
        v.append(f"{len(shards)} shard records for {len(dcs)} DCs")
    for s, dc in zip(shards, dcs):
        if s.location != dc.location:
            v.append(f"shard location {s.location!r} != DC "
                     f"{dc.location!r}")
        if s.n_pms != len(dc.pms):
            v.append(f"shard {s.location}: n_pms={s.n_pms} but the DC "
                     f"has {len(dc.pms)}")

    if metrics is None:
        return v
    if hasattr(metrics, "vms"):  # an IntervalReport
        from ..sim.metrics import metrics_of
        metrics = metrics_of(metrics)

    unplaced = sharded.last_unplaced
    both = shards + ([unplaced] if unplaced is not None else [])

    def total(field: str) -> float:
        return sum(getattr(s, field) for s in both)

    # -- additivity: global KPIs are the shard sums -------------------------
    sums = (
        ("revenue_eur", metrics.revenue_eur, total("revenue_eur")),
        ("migration_penalty_eur", metrics.migration_penalty_eur,
         total("migration_penalty_eur")),
        ("energy_cost_eur", metrics.energy_cost_eur,
         total("energy_cost_eur")),
        ("total_watts", metrics.total_watts, total("watts_sum")),
        ("total_energy_wh", metrics.total_energy_wh,
         total("energy_wh_sum")),
        ("n_pms_on", float(metrics.n_pms_on), total("n_pms_on")),
        ("total_rps", metrics.total_rps, total("rps_sum")),
        ("profit_eur", metrics.profit_eur,
         total("revenue_eur") - total("migration_penalty_eur")
         - total("energy_cost_eur")),
    )
    for name, global_value, shard_sum in sums:
        if not _close(global_value, shard_sum, tol):
            v.append(f"t={metrics.t}: global {name}={global_value} but "
                     f"the shards sum to {shard_sum}")

    n_placed = sum(s.n_placed for s in shards)
    sla_mass = total("sla_sum")
    if unplaced is None:
        expected_sla = sla_mass / n_placed if n_placed else 1.0
        if not _close(metrics.mean_sla, expected_sla, tol):
            v.append(f"t={metrics.t}: mean_sla={metrics.mean_sla} but "
                     f"shard SLA mass gives {expected_sla}")
    elif n_placed:
        # Unplaced traced VMs add 0 to the SLA mass and 1 each to the
        # reported count: they dilute the mean, never raise it.
        ceiling = sla_mass / n_placed
        if metrics.mean_sla > ceiling + tol * (1.0 + abs(ceiling)):
            v.append(f"t={metrics.t}: mean_sla={metrics.mean_sla} "
                     f"exceeds the placed-only ceiling {ceiling}")
    return v


def assert_shard_conservation(sharded, metrics=None,
                              tol: float = DEFAULT_TOL) -> None:
    """Raise :class:`InvariantViolation` listing every broken shard law."""
    violations = check_shard_conservation(sharded, metrics, tol=tol)
    if violations:
        raise InvariantViolation(
            f"{len(violations)} invariant violation(s):\n  "
            + "\n  ".join(violations))


# =============================================================================
# Differential (batch vs scalar) laws
# =============================================================================

#: The numeric fields of a ``PlacementEvaluation`` the scheduling-path
#: differential contract pins (PR 3).
EVAL_FIELDS = ("profit_eur", "revenue_eur", "energy_cost_eur",
               "migration_penalty_eur", "sla", "used_cpu",
               "migration_seconds")


def assert_pack_results_equal(fast, reference,
                              tol: float = PARITY_TOL) -> None:
    """Two ``BestFitResult``s agree: identical assignments/order, and
    per-VM evaluations equal within ``tol`` on every field."""
    assert fast.assignment == reference.assignment
    assert fast.order == reference.order
    assert set(fast.evaluations) == set(reference.evaluations)
    for vm_id, ev in fast.evaluations.items():
        ref = reference.evaluations[vm_id]
        for name in EVAL_FIELDS:
            assert abs(getattr(ev, name) - getattr(ref, name)) < tol, (
                vm_id, name)
        for dim in _DIMS:
            assert abs(getattr(ev.required, dim)
                       - getattr(ref.required, dim)) < tol
            assert abs(getattr(ev.given, dim)
                       - getattr(ref.given, dim)) < tol


def assert_problems_equal(fast, reference) -> None:
    """Two ``SchedulingProblem``s materialize identical rounds."""
    assert [r.vm_id for r in fast.requests] == [r.vm_id for r in
                                                reference.requests]
    for rf, rr in zip(fast.requests, reference.requests):
        assert rf.current_pm == rr.current_pm
        assert rf.current_location == rr.current_location
        assert rf.queue_len == rr.queue_len
        assert list(rf.loads) == list(rr.loads)
        for src, load in rf.loads.items():
            other = rr.loads[src]
            assert load.rps == other.rps
            assert load.bytes_per_req == other.bytes_per_req
            assert load.cpu_time_per_req == other.cpu_time_per_req
    assert [h.pm_id for h in fast.hosts] == [h.pm_id for h in
                                             reference.hosts]
    for hf, hr in zip(fast.hosts, reference.hosts):
        assert hf.location == hr.location
        assert hf.energy_price_eur_kwh == hr.energy_price_eur_kwh
        assert hf.initially_on == hr.initially_on
        assert hf.committed.keys() == hr.committed.keys()
        for vm_id, demand in hf.committed.items():
            assert demand == hr.committed[vm_id]
        assert hf.committed_used_cpu == hr.committed_used_cpu


def assert_system_states_match(sys_a, sys_b,
                               tol: float = PARITY_TOL) -> None:
    """Two stepped systems hold equivalent state: grants, last demands,
    power states and pending migration blackouts (PR 2 contract)."""
    assert set(sys_a.last_demands) == set(sys_b.last_demands)
    for vm_id, da in sys_a.last_demands.items():
        db = sys_b.last_demands[vm_id]
        for dim in _DIMS:
            assert abs(getattr(da, dim) - getattr(db, dim)) < tol
    for dc in sys_a.datacenters:
        for pm in dc.pms:
            other = sys_b.pm(pm.pm_id)
            assert list(pm.granted) == list(other.granted)
            assert pm.on == other.on
            for vm_id, ga in pm.granted.items():
                gb = other.granted[vm_id]
                for dim in _DIMS:
                    assert abs(getattr(ga, dim) - getattr(gb, dim)) < tol
    assert (sys_a._pending_blackout_s.keys()
            == sys_b._pending_blackout_s.keys())


def check_spec_parity(spec, horizon: Optional[int] = None) -> float:
    """Replay a scenario spec's physics on both stepping paths.

    Builds the spec's fleet, workload, tariffs and failure schedule
    twice and runs them without a scheduler — once through the scalar
    reference loop, once through the array path — and returns the worst
    :func:`~repro.sim.fleet.report_max_abs_diff` across the run.  A
    value above :data:`PARITY_TOL` means the batch/scalar contract broke
    on this scenario shape.  ``spec`` only needs the engine's fleet/
    workload/tariffs/failures/horizon fields (variants are ignored: the
    parity under audit is the physics substrate every variant shares).
    """
    from ..sim.engine import run_simulation

    horizon = spec.horizon if horizon is None else horizon
    histories = []
    for batch in (False, True):
        if spec.fleet is None:
            raise ValueError("spec has no fleet")
        system, fleet_trace = spec.fleet.build()
        if spec.workload is None:
            raise ValueError("spec has no workload")
        trace = spec.workload.build(fleet_trace)
        if spec.tariffs is not None:
            system.tariff_schedule = spec.tariffs.build(
                system, trace.n_intervals, trace.interval_s)
        injector = (spec.failures.build() if spec.failures is not None
                    else None)
        histories.append(run_simulation(system, trace,
                                        failure_injector=injector,
                                        stop=horizon, batch=batch))
    scalar, fast = histories
    assert len(scalar) == len(fast)
    return max((report_max_abs_diff(a, b)
                for a, b in zip(scalar.reports, fast.reports)),
               default=0.0)
