"""Scheduler tournaments: the policy x draw matrix and its leaderboard.

One tournament seed deterministically derives every randomized draw
(fleet mix, workload scale, surge timing, failure schedule, tariff
shape, and all downstream seeds) via ``np.random.SeedSequence.spawn`` —
per-draw child streams, so no two draws collapse onto the same RNG state
(the PR 5 ensemble-seeding bug class) and adding draws never perturbs
earlier ones.  Each draw becomes one scenario spec with one variant per
policy (the engine shares the trace and trained models across variants),
every cell is audited against :mod:`repro.arena.invariants`, and the
ranked leaderboard serializes into the same artifact schema
``scenarios diff`` consumes — wall-clock timings excluded, so the same
seed yields byte-identical artifacts run after run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..experiments.engine import (FailureSpec, FleetSpec, ScenarioSpec,
                                  TariffSpec, TrainingSpec, VariantSpec,
                                  WorkloadSpec, json_safe, run_scenario)
from ..experiments.scenario import ScenarioConfig
from ..sim.network import PAPER_LOCATIONS
from ..workload.patterns import FlashCrowd
from .invariants import (PARITY_TOL, capacities_of, check_history,
                         check_spec_parity)
from .policies import SMOKE_ROSTER, ArenaPolicy, resolve_policies

__all__ = ["DrawBounds", "ScenarioDraw", "ArenaConfig", "CellResult",
           "TournamentResult", "draw_schedule", "spec_for_draw",
           "run_tournament", "format_leaderboard", "CELL_KPIS"]


#: The KPIs scored per cell.  Deliberately excludes ``run_s`` (and every
#: other wall-clock reading): leaderboard artifacts must be byte-stable
#: across runs of the same seed.
CELL_KPIS: Tuple[str, ...] = (
    "avg_sla", "avg_watts", "profit_eur", "revenue_eur",
    "energy_cost_eur", "migration_penalty_eur", "total_energy_wh",
    "n_migrations", "n_inter_dc_migrations", "avg_pms_on")


@dataclass(frozen=True)
class DrawBounds:
    """Validity bounds the draw sampler stays inside."""

    n_locations: Tuple[int, int] = (2, 4)
    pms_per_dc: Tuple[int, int] = (1, 3)
    n_vms: Tuple[int, int] = (4, 8)
    scale: Tuple[float, float] = (1.5, 3.5)
    surge_factor: Tuple[float, float] = (1.5, 4.0)
    surge_prob: float = 0.75
    fail_prob: Tuple[float, float] = (0.02, 0.15)
    failure_prob: float = 0.5
    max_down: Tuple[int, int] = (1, 2)
    repair_intervals: Tuple[int, int] = (1, 3)


@dataclass(frozen=True)
class ScenarioDraw:
    """One randomized scenario shape, fully determined by its stream."""

    index: int
    locations: Tuple[str, ...]
    pms_per_dc: int
    n_vms: int
    scale: float
    surge_start_min: Optional[float]
    surge_end_min: Optional[float]
    surge_factor: Optional[float]
    fail_prob: float
    max_down: int
    repair_intervals: int
    tariff_kind: str
    workload_seed: int
    failure_seed: int
    monitor_seed: int
    training_seed: int


def _draw_from_rng(index: int, rng: np.random.Generator, n_intervals: int,
                   bounds: DrawBounds) -> ScenarioDraw:
    """Sample one draw from an already-spawned per-draw stream."""
    k = int(rng.integers(bounds.n_locations[0], bounds.n_locations[1] + 1))
    k = min(k, len(PAPER_LOCATIONS))
    picked = sorted(rng.choice(len(PAPER_LOCATIONS), size=k,
                               replace=False).tolist())
    locations = tuple(PAPER_LOCATIONS[j] for j in picked)
    pms_per_dc = int(rng.integers(bounds.pms_per_dc[0],
                                  bounds.pms_per_dc[1] + 1))
    n_vms = int(rng.integers(bounds.n_vms[0], bounds.n_vms[1] + 1))
    scale = float(rng.uniform(*bounds.scale))

    duration_min = n_intervals * 10.0
    surge_start = surge_end = surge_factor = None
    if rng.random() < bounds.surge_prob:
        surge_start = float(rng.uniform(0.1, 0.5) * duration_min)
        surge_end = surge_start + float(rng.uniform(0.15, 0.35)
                                        * duration_min)
        surge_factor = float(rng.uniform(*bounds.surge_factor))

    fail_prob = 0.0
    max_down = bounds.max_down[0]
    repair = bounds.repair_intervals[0]
    if rng.random() < bounds.failure_prob:
        fail_prob = float(rng.uniform(*bounds.fail_prob))
        max_down = int(rng.integers(bounds.max_down[0],
                                    bounds.max_down[1] + 1))
        repair = int(rng.integers(bounds.repair_intervals[0],
                                  bounds.repair_intervals[1] + 1))

    tariff_kind = str(rng.choice(("flat", "solar", "time_of_use")))
    seeds = rng.integers(0, 2**31 - 1, size=4)
    return ScenarioDraw(
        index=index, locations=locations, pms_per_dc=pms_per_dc,
        n_vms=n_vms, scale=scale, surge_start_min=surge_start,
        surge_end_min=surge_end, surge_factor=surge_factor,
        fail_prob=fail_prob, max_down=max_down, repair_intervals=repair,
        tariff_kind=tariff_kind, workload_seed=int(seeds[0]),
        failure_seed=int(seeds[1]), monitor_seed=int(seeds[2]),
        training_seed=int(seeds[3]))


def draw_schedule(seed: int, n_draws: int, n_intervals: int,
                  bounds: DrawBounds = DrawBounds()
                  ) -> Tuple[ScenarioDraw, ...]:
    """``n_draws`` deterministic draws from one tournament seed.

    Each draw consumes its own ``SeedSequence.spawn`` child stream, so
    draws are mutually independent and the schedule is stable under
    appending more draws.
    """
    if n_draws < 1:
        raise ValueError("n_draws must be >= 1")
    root = np.random.SeedSequence(seed)
    return tuple(
        _draw_from_rng(i, np.random.default_rng(child), n_intervals, bounds)
        for i, child in enumerate(root.spawn(n_draws)))


@dataclass(frozen=True)
class ArenaConfig:
    """Everything one tournament run depends on."""

    seed: int = 0
    n_draws: int = 4
    policies: Tuple[str, ...] = SMOKE_ROSTER
    n_intervals: int = 12
    bounds: DrawBounds = field(default_factory=DrawBounds)
    check_invariants: bool = True
    check_parity: bool = True
    #: Exploration-harvest scales for the shared training run (kept
    #: small: every ML policy in the roster multiplies training cost).
    training_scales: Tuple[float, ...] = (0.6, 1.5)
    #: Ensemble size for the bagged/calibrated policies.
    bagging: int = 2


def spec_for_draw(draw: ScenarioDraw, policies: Sequence[ArenaPolicy],
                  config: ArenaConfig) -> ScenarioSpec:
    """One scenario spec per draw: one variant per (eligible) policy."""
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    if draw.surge_factor is not None:
        flash_crowds = (FlashCrowd(start_minute=draw.surge_start_min,
                                   end_minute=draw.surge_end_min,
                                   factor=draw.surge_factor),)
    cfg = ScenarioConfig(locations=draw.locations,
                         pms_per_dc=draw.pms_per_dc, n_vms=draw.n_vms,
                         n_intervals=config.n_intervals, scale=draw.scale,
                         seed=draw.workload_seed,
                         flash_crowds=flash_crowds)
    # Plain (unbagged) models at scenario level serve bf_ml/hier_ml/
    # online; the bagged policies carry their own per-variant training
    # spec, which the engine's training cache shares between them.
    needs_plain = any(p.needs_models and not p.bagged for p in policies)
    needs_bagged = any(p.bagged for p in policies)
    training = TrainingSpec(scales=config.training_scales,
                            seed=draw.training_seed)
    bagged = replace(training, bagging=config.bagging)
    variants = tuple(
        VariantSpec(name=p.name, scheduler=p.build(draw),
                    training=bagged if p.bagged else None,
                    risk=p.risk)
        for p in policies)
    return ScenarioSpec(
        name=f"arena_draw{draw.index}",
        description=f"arena draw {draw.index}: "
                    f"{len(draw.locations)} DCs x {draw.pms_per_dc} PMs, "
                    f"{draw.n_vms} VMs, tariff {draw.tariff_kind}",
        fleet=FleetSpec("multidc", config=cfg),
        workload=WorkloadSpec("multidc", config=cfg),
        variants=variants,
        training=training if (needs_plain or needs_bagged) else None,
        failures=(FailureSpec(fail_prob=draw.fail_prob,
                              repair_intervals=draw.repair_intervals,
                              max_down=draw.max_down,
                              seed=draw.failure_seed)
                  if draw.fail_prob > 0.0 else None),
        tariffs=(None if draw.tariff_kind == "flat"
                 else TariffSpec(kind=draw.tariff_kind)),
        seed=draw.workload_seed)


@dataclass(frozen=True)
class CellResult:
    """One (draw, policy) cell of the matrix."""

    draw: int
    policy: str
    kpis: Dict[str, float]


@dataclass
class TournamentResult:
    """The full matrix plus its audit trail and derived leaderboard."""

    config: ArenaConfig
    draws: Tuple[ScenarioDraw, ...]
    cells: List[CellResult]
    violations: List[str] = field(default_factory=list)
    #: policy -> draw indices skipped (e.g. exact above its VM ceiling).
    skipped: Dict[str, List[int]] = field(default_factory=dict)
    #: draw index -> worst batch/scalar report divergence.
    parity: Dict[int, float] = field(default_factory=dict)

    # -- ranking --------------------------------------------------------------
    def ranks(self) -> Dict[str, List[int]]:
        """Per-policy rank positions, one per played draw (1 = best)."""
        by_draw: Dict[int, List[CellResult]] = {}
        for cell in self.cells:
            by_draw.setdefault(cell.draw, []).append(cell)
        out: Dict[str, List[int]] = {}
        for cells in by_draw.values():
            ordered = sorted(cells, key=lambda c: (-c.kpis["profit_eur"],
                                                   c.policy))
            for position, cell in enumerate(ordered, start=1):
                out.setdefault(cell.policy, []).append(position)
        return out

    def leaderboard(self) -> List[Dict[str, object]]:
        """Ranked rows: mean rank first, mean profit as tie-break."""
        ranks = self.ranks()
        by_policy: Dict[str, List[CellResult]] = {}
        for cell in self.cells:
            by_policy.setdefault(cell.policy, []).append(cell)
        rows: List[Dict[str, object]] = []
        for policy, cells in by_policy.items():
            row: Dict[str, object] = {
                "policy": policy,
                "n_draws": len(cells),
                "wins": sum(1 for r in ranks[policy] if r == 1),
                "mean_rank": float(np.mean(ranks[policy])),
            }
            for kpi in CELL_KPIS:
                row[f"mean_{kpi}"] = float(np.mean(
                    [c.kpis[kpi] for c in cells]))
            rows.append(row)
        rows.sort(key=lambda r: (r["mean_rank"], -r["mean_profit_eur"],
                                 r["policy"]))
        return rows

    # -- artifact -------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """The leaderboard artifact, ``scenarios diff``-compatible.

        Same top-level schema as ``scenarios run --json`` (``scenario``,
        ``seed``, ``timings``, ``variants`` with per-policy ``kpis``,
        ``extras``) and fully deterministic: no wall-clock values, so
        two runs of the same seed produce byte-identical files.
        """
        variants: Dict[str, object] = {}
        for row in self.leaderboard():
            kpis = {k: v for k, v in row.items() if k != "policy"}
            variants[str(row["policy"])] = {"kpis": kpis}
        return {
            "scenario": "arena",
            "description": f"policy tournament: "
                           f"{len(self.config.policies)} policies x "
                           f"{self.config.n_draws} draws",
            "seed": self.config.seed,
            "timings": {},
            "variants": variants,
            "extras": json_safe({
                "leaderboard": [row["policy"]
                                for row in self.leaderboard()],
                "policies": list(self.config.policies),
                "n_intervals": self.config.n_intervals,
                "draws": [asdict(d) for d in self.draws],
                "cells": [{"draw": c.draw, "policy": c.policy,
                           "kpis": c.kpis} for c in self.cells],
                "invariants": {
                    "checked": self.config.check_invariants,
                    "violations": list(self.violations),
                },
                "parity_max_abs_diff": {str(i): v
                                        for i, v in self.parity.items()},
                "skipped": {k: list(v) for k, v in self.skipped.items()},
            }),
        }

    def save_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _cell_kpis(variant_result) -> Dict[str, float]:
    kpis = variant_result.kpis()
    return {k: float(kpis[k]) for k in CELL_KPIS}


def run_tournament(config: ArenaConfig = ArenaConfig(),
                   progress=None) -> TournamentResult:
    """Run the whole policy x draw matrix; see the module docstring.

    ``progress`` (optional) is called with one line per completed draw —
    the CLI passes ``print``.
    """
    policies = resolve_policies(config.policies)
    draws = draw_schedule(config.seed, config.n_draws, config.n_intervals,
                          config.bounds)
    result = TournamentResult(config=config, draws=draws, cells=[])
    for draw in draws:
        roster = [p for p in policies if p.plays(draw.n_vms)]
        for p in policies:
            if not p.plays(draw.n_vms):
                result.skipped.setdefault(p.name, []).append(draw.index)
        spec = spec_for_draw(draw, roster, config)
        capacities = capacities_of(spec.fleet.build()[0])
        scenario_result = run_scenario(spec)
        if config.check_parity:
            worst = check_spec_parity(spec)
            result.parity[draw.index] = float(worst)
            if worst > PARITY_TOL:
                result.violations.append(
                    f"draw {draw.index}: batch/scalar stepping diverge "
                    f"by {worst:.3e}")
        for p in roster:
            variant = scenario_result.variant(p.name)
            if config.check_invariants:
                for msg in check_history(variant.history,
                                         capacities=capacities):
                    result.violations.append(
                        f"draw {draw.index}/{p.name}: {msg}")
            result.cells.append(CellResult(draw=draw.index, policy=p.name,
                                           kpis=_cell_kpis(variant)))
        if progress is not None:
            progress(f"draw {draw.index + 1}/{config.n_draws}: "
                     f"{len(roster)} policies, "
                     f"{len(result.violations)} violation(s) so far")
    return result


def format_leaderboard(result: TournamentResult) -> str:
    """The ranked leaderboard as a text table."""
    config = result.config
    lines = [f"Arena leaderboard (seed {config.seed}, "
             f"{config.n_draws} draws x {len(config.policies)} policies, "
             f"{config.n_intervals} intervals)"]
    lines.append(f"{'rank':>4} {'policy':<18} {'mrank':>6} {'wins':>5} "
                 f"{'profit':>10} {'SLA':>7} {'energy':>9} {'migr':>6}")
    for position, row in enumerate(result.leaderboard(), start=1):
        lines.append(
            f"{position:>4} {row['policy']:<18} "
            f"{row['mean_rank']:>6.2f} {row['wins']:>5d} "
            f"{row['mean_profit_eur']:>10.4f} {row['mean_avg_sla']:>7.3f} "
            f"{row['mean_energy_cost_eur']:>9.4f} "
            f"{row['mean_n_migrations']:>6.1f}")
    for policy, skipped in sorted(result.skipped.items()):
        lines.append(f"  note: {policy} skipped draws "
                     f"{skipped} (instance-size ceiling)")
    if result.config.check_invariants or result.config.check_parity:
        if result.violations:
            lines.append(f"INVARIANT VIOLATIONS ({len(result.violations)}):")
            lines.extend(f"  {msg}" for msg in result.violations)
        else:
            lines.append(f"invariants: OK across {len(result.cells)} "
                         f"cells")
    return "\n".join(lines)
