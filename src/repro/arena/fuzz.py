"""Scenario fuzzing: mutate specs, find breakage, shrink, check it in.

:func:`run_fuzz` draws a base scenario per trial (same sampler as the
tournament), applies 1-3 named mutations within validity bounds
(:func:`mutate_spec`), and audits the result (:func:`check_spec`): every
variant's history against the invariant suite, batch/scalar stepping
parity, and — optionally — a performance floor for a watched policy
(e.g. "calibrated ML never drops below 0.5 avg SLA here").  On a
finding, :func:`shrink_spec` greedily minimizes the spec while the
finding persists and :func:`write_repro` lands the canonical JSON in
``tests/arena/repros/``, where a regression test replays it forever.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..experiments.engine import ScenarioSpec, run_scenario
from ..experiments.scenario import ScenarioConfig
from ..experiments.specio import (spec_from_json_dict, spec_to_json,
                                  spec_to_json_dict)
from ..workload.patterns import FlashCrowd
from .invariants import PARITY_TOL, capacities_of, check_history, \
    check_spec_parity
from .policies import SMOKE_ROSTER, resolve_policies
from .tournament import ArenaConfig, DrawBounds, draw_schedule, spec_for_draw

__all__ = ["FuzzFinding", "check_spec", "mutate_spec", "shrink_spec",
           "run_fuzz", "write_repro", "replay_repro", "MUTATIONS"]


@dataclass(frozen=True)
class FuzzFinding:
    """One failure the fuzzer kept: what broke, where, and the shrunk spec."""

    #: ``invariant`` | ``parity`` | ``floor``.
    kind: str
    detail: str
    trial: int
    mutations: Tuple[str, ...]
    spec: ScenarioSpec
    shrink_steps: int = 0


# =============================================================================
# checking
# =============================================================================

def check_spec(spec: ScenarioSpec, floor: Optional[float] = None,
               floor_policy: str = "bf_ml_calibrated",
               check_parity: bool = True) -> List[Tuple[str, str]]:
    """Run ``spec`` and return every ``(kind, detail)`` failure found."""
    findings: List[Tuple[str, str]] = []
    capacities = (capacities_of(spec.fleet.build()[0])
                  if spec.fleet is not None else None)
    result = run_scenario(spec)
    for name, variant in result.variants.items():
        for msg in check_history(variant.history, capacities=capacities):
            findings.append(("invariant", f"{name}: {msg}"))
    if check_parity:
        worst = check_spec_parity(spec)
        if worst > PARITY_TOL:
            findings.append(
                ("parity",
                 f"batch/scalar stepping diverge by {worst:.3e}"))
    if floor is not None and floor_policy in result.variants:
        sla = float(result.variants[floor_policy].kpis()["avg_sla"])
        if sla < floor:
            findings.append(
                ("floor",
                 f"{floor_policy} avg_sla {sla:.4f} below floor {floor}"))
    return findings


# =============================================================================
# mutation
# =============================================================================

def _config_of(spec: ScenarioSpec) -> ScenarioConfig:
    if spec.fleet is None or spec.fleet.config is None:
        raise ValueError("fuzzing needs a config-driven multidc spec")
    return spec.fleet.config


def _with_config(spec: ScenarioSpec, cfg: ScenarioConfig) -> ScenarioSpec:
    """Swap the shared ScenarioConfig into both fleet and workload."""
    return replace(spec,
                   fleet=replace(spec.fleet, config=cfg),
                   workload=replace(spec.workload, config=cfg))


def _mut_scale_up(spec, rng):
    cfg = _config_of(spec)
    return _with_config(spec, replace(
        cfg, scale=min(8.0, cfg.scale * float(rng.uniform(1.3, 2.5)))))


def _mut_scale_down(spec, rng):
    cfg = _config_of(spec)
    return _with_config(spec, replace(
        cfg, scale=max(0.5, cfg.scale * float(rng.uniform(0.4, 0.8)))))


def _mut_more_vms(spec, rng):
    cfg = _config_of(spec)
    return _with_config(spec, replace(
        cfg, n_vms=min(24, cfg.n_vms + int(rng.integers(1, 6)))))


def _mut_fewer_pms(spec, rng):
    cfg = _config_of(spec)
    return _with_config(spec, replace(
        cfg, pms_per_dc=max(1, cfg.pms_per_dc - 1)))


def _mut_surge_boost(spec, rng):
    cfg = _config_of(spec)
    duration_min = cfg.n_intervals * cfg.interval_s / 60.0
    if cfg.flash_crowds:
        crowds = tuple(replace(c, factor=min(6.0, c.factor
                                             * float(rng.uniform(1.2, 2.0))))
                       for c in cfg.flash_crowds)
    else:
        start = float(rng.uniform(0.1, 0.5) * duration_min)
        crowds = (FlashCrowd(start_minute=start,
                             end_minute=start + 0.25 * duration_min,
                             factor=float(rng.uniform(2.0, 6.0))),)
    return _with_config(spec, replace(cfg, flash_crowds=crowds))


def _mut_surge_drop(spec, rng):
    cfg = _config_of(spec)
    return _with_config(spec, replace(cfg, flash_crowds=()))


def _mut_failures_up(spec, rng):
    from ..experiments.engine import FailureSpec
    failures = spec.failures or FailureSpec(fail_prob=0.0)
    return replace(spec, failures=replace(
        failures,
        fail_prob=min(0.3, max(0.02, failures.fail_prob)
                      * float(rng.uniform(1.5, 3.0)))))


def _mut_failures_off(spec, rng):
    return replace(spec, failures=None)


def _mut_tariff_flip(spec, rng):
    from ..experiments.engine import TariffSpec
    cycle = ("flat", "solar", "time_of_use")
    current = spec.tariffs.kind if spec.tariffs is not None else "flat"
    nxt = cycle[(cycle.index(current) + 1) % len(cycle)]
    return replace(spec, tariffs=None if nxt == "flat"
                   else TariffSpec(kind=nxt))


def _mut_reseed(spec, rng):
    seed = int(rng.integers(0, 2**31 - 1))
    cfg = _config_of(spec)
    return replace(_with_config(spec, replace(cfg, seed=seed)), seed=seed)


def _mut_horizon_cut(spec, rng):
    cfg = _config_of(spec)
    return _with_config(spec, replace(
        cfg, n_intervals=max(4, cfg.n_intervals // 2)))


#: Named mutations, each ``(spec, rng) -> spec`` inside validity bounds.
MUTATIONS = {
    "scale_up": _mut_scale_up,
    "scale_down": _mut_scale_down,
    "more_vms": _mut_more_vms,
    "fewer_pms": _mut_fewer_pms,
    "surge_boost": _mut_surge_boost,
    "surge_drop": _mut_surge_drop,
    "failures_up": _mut_failures_up,
    "failures_off": _mut_failures_off,
    "tariff_flip": _mut_tariff_flip,
    "reseed": _mut_reseed,
    "horizon_cut": _mut_horizon_cut,
}


def mutate_spec(spec: ScenarioSpec, rng: np.random.Generator,
                name: Optional[str] = None
                ) -> Tuple[ScenarioSpec, str]:
    """Apply one (named or drawn) mutation; returns ``(spec, name)``."""
    if name is None:
        name = str(rng.choice(sorted(MUTATIONS)))
    return MUTATIONS[name](spec, rng), name


# =============================================================================
# shrinking
# =============================================================================

def _shrink_candidates(spec: ScenarioSpec) -> List[Tuple[str, ScenarioSpec]]:
    """Strictly-smaller variants of ``spec``, most aggressive first."""
    out: List[Tuple[str, ScenarioSpec]] = []
    cfg = _config_of(spec)
    if cfg.n_vms > 2:
        out.append(("halve_vms", _with_config(
            spec, replace(cfg, n_vms=max(2, cfg.n_vms // 2)))))
    if cfg.pms_per_dc > 1:
        out.append(("halve_pms", _with_config(
            spec, replace(cfg, pms_per_dc=max(1, cfg.pms_per_dc // 2)))))
    if cfg.n_intervals > 4:
        out.append(("halve_intervals", _with_config(
            spec, replace(cfg, n_intervals=max(4, cfg.n_intervals // 2)))))
    if len(cfg.locations) > 2:
        out.append(("two_locations", _with_config(
            spec, replace(cfg, locations=tuple(cfg.locations[:2])))))
    if spec.failures is not None:
        out.append(("drop_failures", replace(spec, failures=None)))
    if spec.tariffs is not None:
        out.append(("drop_tariffs", replace(spec, tariffs=None)))
    if cfg.flash_crowds:
        out.append(("drop_surge", _with_config(
            spec, replace(cfg, flash_crowds=()))))
    if len(spec.variants) > 1:
        for i in range(len(spec.variants)):
            kept = spec.variants[:i] + spec.variants[i + 1:]
            out.append((f"drop_variant_{spec.variants[i].name}",
                        replace(spec, variants=kept)))
    return out


def shrink_spec(spec: ScenarioSpec,
                still_fails: Callable[[ScenarioSpec], bool],
                max_rounds: int = 8) -> Tuple[ScenarioSpec, int]:
    """Greedy fixpoint shrink: keep any reduction that still fails."""
    steps = 0
    for _ in range(max_rounds):
        progressed = False
        for _, candidate in _shrink_candidates(spec):
            try:
                if still_fails(candidate):
                    spec, steps, progressed = candidate, steps + 1, True
                    break
            except Exception:
                continue  # an invalid reduction is just not taken
        if not progressed:
            return spec, steps
    return spec, steps


# =============================================================================
# the loop
# =============================================================================

def run_fuzz(budget: int, seed: int = 0,
             policies: Sequence[str] = SMOKE_ROSTER,
             n_intervals: int = 8,
             floor: Optional[float] = None,
             floor_policy: str = "bf_ml_calibrated",
             check_parity: bool = True,
             repro_dir: Optional[str] = None,
             bounds: DrawBounds = DrawBounds(),
             progress=None) -> List[FuzzFinding]:
    """``budget`` trials of draw -> mutate -> check -> shrink -> record."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    roster = resolve_policies(policies)
    config = ArenaConfig(seed=seed, n_draws=budget, policies=tuple(policies),
                         n_intervals=n_intervals, bounds=bounds)
    draws = draw_schedule(seed, budget, n_intervals, bounds)
    streams = np.random.SeedSequence(seed ^ 0x5EED).spawn(budget)
    findings: List[FuzzFinding] = []
    for trial, (draw, stream) in enumerate(zip(draws, streams)):
        rng = np.random.default_rng(stream)
        eligible = [p for p in roster if p.plays(24)]  # mutation headroom
        spec = spec_for_draw(draw, eligible, config)
        applied: List[str] = []
        for _ in range(int(rng.integers(1, 4))):
            spec, name = mutate_spec(spec, rng)
            applied.append(name)
        found = check_spec(spec, floor=floor, floor_policy=floor_policy,
                           check_parity=check_parity)
        if progress is not None:
            progress(f"trial {trial + 1}/{budget} "
                     f"[{', '.join(applied)}]: "
                     f"{len(found)} finding(s)")
        for kind, detail in found:
            def still_fails(candidate, _kind=kind):
                return any(k == _kind for k, _ in check_spec(
                    candidate, floor=floor, floor_policy=floor_policy,
                    check_parity=check_parity))
            shrunk, steps = shrink_spec(spec, still_fails)
            finding = FuzzFinding(kind=kind, detail=detail, trial=trial,
                                  mutations=tuple(applied), spec=shrunk,
                                  shrink_steps=steps)
            findings.append(finding)
            if repro_dir is not None:
                path = write_repro(finding, repro_dir,
                                   floor=floor, floor_policy=floor_policy)
                if progress is not None:
                    progress(f"  repro written: {path}")
            break  # one finding per trial is enough to act on
    return findings


# =============================================================================
# repro files
# =============================================================================

def write_repro(finding: FuzzFinding, repro_dir: str,
                floor: Optional[float] = None,
                floor_policy: str = "bf_ml_calibrated") -> str:
    """Write the finding as a replayable JSON file; returns its path."""
    canonical = spec_to_json(finding.spec)
    digest = hashlib.sha1(canonical.encode()).hexdigest()[:10]
    payload = {
        "schema": 1,
        "kind": finding.kind,
        "detail": finding.detail,
        "trial": finding.trial,
        "mutations": list(finding.mutations),
        "shrink_steps": finding.shrink_steps,
        "floor": floor,
        "floor_policy": floor_policy,
        "spec": spec_to_json_dict(finding.spec),
    }
    os.makedirs(repro_dir, exist_ok=True)
    path = os.path.join(repro_dir, f"{finding.kind}_{digest}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def replay_repro(path: str) -> Tuple[dict, List[Tuple[str, str]]]:
    """Re-run a checked-in repro; returns ``(payload, current findings)``."""
    with open(path) as fh:
        payload = json.load(fh)
    spec = spec_from_json_dict(payload["spec"])
    findings = check_spec(spec, floor=payload.get("floor"),
                          floor_policy=payload.get("floor_policy",
                                                   "bf_ml_calibrated"))
    return payload, findings
