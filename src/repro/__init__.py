"""repro — reproduction of *Power-Aware Multi-DataCenter Management using
Machine Learning* (Berral, Gavaldà, Torres; ICPP 2013).

Layers:

* :mod:`repro.sim` — multi-DC simulator substrate (machines, power, RT,
  network, tariffs, monitoring, engine).
* :mod:`repro.workload` — Li-BCN-like synthetic web workload generation.
* :mod:`repro.ml` — from-scratch M5P / k-NN / linear regression and the
  paper's seven predictors (Table I).
* :mod:`repro.core` — the profit-driven scheduling model (Figure 3),
  Ordered Best-Fit (Algorithm 1), exact solver, hierarchical scheduler.
* :mod:`repro.experiments` — canonical scenarios and one module per paper
  table/figure.
"""

__version__ = "1.0.0"

from . import core, ml, sim, workload

__all__ = ["core", "ml", "sim", "workload", "__version__"]
