"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli table3 --intervals 72 --scale 3.0
    python -m repro.cli all

Each artifact command runs the corresponding experiment module and prints
the same report the benchmarks assert against.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

from .experiments import (format_delocation, format_figure4, format_figure5,
                          format_figure6, format_figure7, format_figure8,
                          format_table1, format_table2, format_table3,
                          run_delocation, run_figure4, run_figure5,
                          run_figure6, run_figure7, run_figure8, run_table1,
                          run_table2, run_table3)
from .experiments.scenario import ScenarioConfig

__all__ = ["main", "ARTIFACTS"]


def _config_from_args(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(n_intervals=args.intervals, scale=args.scale,
                          seed=args.seed)


def _run_table1(args):
    return format_table1(run_table1(_config_from_args(args),
                                    seed=args.seed))


def _run_table2(args):
    return format_table2(run_table2())


def _run_table3(args):
    return format_table3(run_table3(_config_from_args(args),
                                    seed=args.seed))


def _run_figure4(args):
    return format_figure4(run_figure4(n_intervals=args.intervals,
                                      seed=args.seed))


def _run_figure5(args):
    return format_figure5(run_figure5(n_intervals=args.intervals,
                                      seed=args.seed))


def _run_figure6(args):
    from .workload.patterns import PAPER_FLASH_CROWD
    config = ScenarioConfig(n_intervals=args.intervals, scale=args.scale,
                            seed=args.seed,
                            flash_crowds=(PAPER_FLASH_CROWD,))
    return format_figure6(run_figure6(config, seed=args.seed))


def _run_figure7(args):
    return format_figure7(run_figure7(_config_from_args(args),
                                      seed=args.seed))


def _run_figure8(args):
    return format_figure8(run_figure8(_config_from_args(args),
                                      seed=args.seed))


def _run_delocation(args):
    return format_delocation(run_delocation(n_intervals=args.intervals,
                                            seed=args.seed))


#: Artifact name -> (runner, description).
ARTIFACTS: Dict[str, tuple] = {
    "table1": (_run_table1, "Table I — per-predictor learning quality"),
    "table2": (_run_table2, "Table II — prices and latencies"),
    "table3": (_run_table3, "Table III — static vs dynamic multi-DC"),
    "figure4": (_run_figure4, "Figure 4 — intra-DC BF / BF-OB / BF-ML"),
    "figure5": (_run_figure5, "Figure 5 — follow-the-load trace"),
    "figure6": (_run_figure6, "Figure 6 — full inter-DC with flash crowd"),
    "figure7": (_run_figure7, "Figure 7 — static vs dynamic time series"),
    "figure8": (_run_figure8, "Figure 8 — SLA vs energy vs load"),
    "delocation": (_run_delocation, "§V.C — de-location benefit"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("artifact",
                        choices=sorted(ARTIFACTS) + ["all", "list"],
                        help="which artifact to regenerate")
    parser.add_argument("--intervals", type=int, default=144,
                        help="scheduling rounds (default: 144 = 24 h)")
    parser.add_argument("--scale", type=float, default=3.0,
                        help="workload scale factor")
    parser.add_argument("--seed", type=int, default=7,
                        help="experiment seed")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        for name in sorted(ARTIFACTS):
            print(f"{name:<12} {ARTIFACTS[name][1]}")
        return 0
    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in names:
        runner, description = ARTIFACTS[name]
        print(f"== {name}: {description} ==")
        t0 = time.perf_counter()
        print(runner(args))
        print(f"[{name} regenerated in {time.perf_counter() - t0:.1f} s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
