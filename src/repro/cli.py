"""Command-line interface: paper artifacts and registry scenarios.

Legacy artifact commands (output unchanged since PR 3)::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli table3 --intervals 72 --scale 3.0
    python -m repro.cli all

Generic scenario commands over the PR 4 engine
(:mod:`repro.experiments.engine`)::

    python -m repro.cli scenarios list
    python -m repro.cli scenarios run figure6 --intervals 72
    python -m repro.cli scenarios run follow_the_sun_8dc --json out.json
    python -m repro.cli scenarios run table3 --csv intervals.csv
    python -m repro.cli scenarios run huge_fleet_stream --stream kpis.jsonl
    python -m repro.cli scenarios diff before.json after.json

``scenarios run`` prints the generic KPI report and can persist the
structured :class:`~repro.experiments.engine.ScenarioResult` as a JSON
artifact (per-variant KPIs + interval series) or a per-interval CSV.
``--stream PATH`` plays each variant through a bounded-memory disk sink
(:func:`repro.sim.metrics.open_sink`: ``.jsonl`` or ``.csv``) instead of
keeping interval reports in memory — the 50-100k-VM mode; with several
variants the path gains a ``.<variant>`` infix.  KPIs and the JSON
artifact are identical either way (the sink performs the same
reduction), so streamed artifacts stay ``scenarios diff``-clean.
``scenarios diff`` compares two such JSON artifacts KPI-by-KPI (the
perf/quality trajectory across PRs, reviewable from CI artifacts
alone); ``--tol PCT`` makes it exit non-zero on drift beyond the
tolerance, so it can gate CI.

The policy arena (PR 7, :mod:`repro.arena`)::

    python -m repro.cli arena run --seed 0 --draws 4 --json leaderboard.json
    python -m repro.cli arena run --policies all --intervals 24
    python -m repro.cli arena fuzz --budget 10 --floor 0.5 \\
        --repro-dir tests/arena/repros

``arena run`` plays every roster policy against the same deterministic
scenario draws, audits each cell with the shared invariant suite, and
emits a ranked leaderboard artifact ``scenarios diff`` can compare
across commits (same seed = byte-identical bytes).  ``arena fuzz``
mutates scenario specs hunting invariant breaks; findings are shrunk to
minimal repro specs.  The fuzz budget defaults to the
``REPRO_ARENA_FUZZ_BUDGET`` env var (the CI nightly-profile knob).

The warm placement server (PR 6, :mod:`repro.service`)::

    python -m repro.cli serve --port 8421 --preload multidc_baseline
    python -m repro.cli serve --preload table3:prod --estimator ml

``serve`` trains/builds the preloaded sessions up front and then answers
``/place`` / ``/step`` / ``/report`` / ``/scenarios/run`` / ``/healthz``
over plain HTTP+JSON until interrupted.

The contract linter + race analyzer (PR 9, :mod:`repro.lint`)::

    python -m repro.cli lint
    python -m repro.cli lint --baseline lint/baseline.json --json out.json
    python -m repro.cli lint src/repro/service --quiet

``lint`` runs the four static rule families (determinism, aliasing,
lock discipline, parity pairs) over the tree.  With ``--baseline``,
known findings warn while new ones fail; ``--write-baseline`` records
the current findings as the new baseline.

Quietness and exit codes
------------------------

``scenarios``, ``arena``, ``serve`` and ``lint`` all take ``--quiet``:
suppress informational stdout (reports, progress, ``[wrote ...]``
banners) while still writing artifacts; errors always go to stderr, and
the exit code alone carries the verdict.  Exit codes are uniform:

* ``0`` — success (``scenarios diff``: no drift beyond ``--tol``;
  ``arena run``: no invariant violations; ``arena fuzz``: no
  invariant/parity findings — floor findings are triage, not failure;
  ``lint``: clean, or only baselined findings).
* ``1`` — the command ran and found a failure (KPI drift beyond
  ``--tol``, invariant violations, invariant/parity fuzz findings, new
  lint findings).
* ``2`` — usage error: unknown scenario/policy/session, malformed
  flags or paths, analysis-only scenario with ``--csv``/``--stream``,
  unreadable baseline/artifact.

The legacy artifact commands (``table1`` ... ``all``) return 0 on
success and 2 on argparse errors, as before.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, Optional

from .experiments import (REGISTRY, format_delocation, format_figure4,
                          format_figure5, format_figure6, format_figure7,
                          format_figure8, format_scenario_result,
                          format_table1, format_table2, format_table3,
                          run_delocation, run_figure4, run_figure5,
                          run_figure6, run_figure7, run_figure8,
                          run_scenario, run_table1, run_table2, run_table3)
from .experiments.scenario import ScenarioConfig

__all__ = ["main", "ARTIFACTS"]


def _config_from_args(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(n_intervals=args.intervals, scale=args.scale,
                          seed=args.seed)


def _run_table1(args):
    return format_table1(run_table1(_config_from_args(args),
                                    seed=args.seed))


def _run_table2(args):
    return format_table2(run_table2())


def _run_table3(args):
    return format_table3(run_table3(_config_from_args(args),
                                    seed=args.seed))


def _run_figure4(args):
    return format_figure4(run_figure4(n_intervals=args.intervals,
                                      seed=args.seed))


def _run_figure5(args):
    return format_figure5(run_figure5(n_intervals=args.intervals,
                                      seed=args.seed))


def _run_figure6(args):
    from .workload.patterns import PAPER_FLASH_CROWD
    config = ScenarioConfig(n_intervals=args.intervals, scale=args.scale,
                            seed=args.seed,
                            flash_crowds=(PAPER_FLASH_CROWD,))
    return format_figure6(run_figure6(config, seed=args.seed))


def _run_figure7(args):
    return format_figure7(run_figure7(_config_from_args(args),
                                      seed=args.seed))


def _run_figure8(args):
    return format_figure8(run_figure8(_config_from_args(args),
                                      seed=args.seed))


def _run_delocation(args):
    return format_delocation(run_delocation(n_intervals=args.intervals,
                                            seed=args.seed))


#: Artifact name -> (runner, description).
ARTIFACTS: Dict[str, tuple] = {
    "table1": (_run_table1, "Table I — per-predictor learning quality"),
    "table2": (_run_table2, "Table II — prices and latencies"),
    "table3": (_run_table3, "Table III — static vs dynamic multi-DC"),
    "figure4": (_run_figure4, "Figure 4 — intra-DC BF / BF-OB / BF-ML"),
    "figure5": (_run_figure5, "Figure 5 — follow-the-load trace"),
    "figure6": (_run_figure6, "Figure 6 — full inter-DC with flash crowd"),
    "figure7": (_run_figure7, "Figure 7 — static vs dynamic time series"),
    "figure8": (_run_figure8, "Figure 8 — SLA vs energy vs load"),
    "delocation": (_run_delocation, "§V.C — de-location benefit"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
        epilog="Beyond the paper artifacts, every registered scenario "
               "spec is runnable via `repro scenarios list` / "
               "`repro scenarios run <name>` (see `repro scenarios "
               "--help`).")
    parser.add_argument("artifact",
                        choices=sorted(ARTIFACTS) + ["all", "list"],
                        help="which artifact to regenerate")
    parser.add_argument("--intervals", type=int, default=144,
                        help="scheduling rounds (default: 144 = 24 h)")
    parser.add_argument("--scale", type=float, default=3.0,
                        help="workload scale factor")
    parser.add_argument("--seed", type=int, default=7,
                        help="experiment seed")
    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0.0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _seed_int(text: str) -> int:
    value = int(text)
    if value < 0:
        # numpy's SeedSequence rejects negative seeds deep inside trace
        # generation; fail at the parser instead.
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _add_quiet(parser: argparse.ArgumentParser) -> None:
    """The shared --quiet flag: suppress informational stdout.

    Artifacts are still written and errors still go to stderr; the exit
    code alone carries the verdict (see the module docstring).
    """
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress informational output (artifacts "
                             "are still written; errors go to stderr)")


def _say(args) -> Callable[..., None]:
    """``print`` honoring the shared --quiet flag."""
    if getattr(args, "quiet", False):
        return lambda *a, **k: None
    return print


def build_scenario_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description="List and run registered scenario specs "
                    "(repro.experiments.engine).")
    sub = parser.add_subparsers(dest="command", required=True)
    lst = sub.add_parser("list", help="list registered scenarios")
    _add_quiet(lst)
    run = sub.add_parser("run", help="run one registered scenario")
    _add_quiet(run)
    run.add_argument("name", help="registered scenario name")
    run.add_argument("--intervals", type=_positive_int, default=None,
                     help="override the scenario's horizon (rounds)")
    run.add_argument("--scale", type=_positive_float, default=None,
                     help="override the workload scale factor")
    run.add_argument("--seed", type=_seed_int, default=None,
                     help="override the experiment seed")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="write the structured result as JSON")
    run.add_argument("--csv", metavar="PATH", default=None,
                     help="write the per-interval series as CSV")
    run.add_argument("--stream", metavar="PATH", default=None,
                     help="stream per-interval KPIs to a bounded-memory "
                          "disk sink (.jsonl or .csv) instead of keeping "
                          "interval reports in memory; with several "
                          "variants PATH gains a .<variant> infix")
    run.add_argument("--no-series", action="store_true",
                     help="omit interval series from the JSON artifact")
    diff = sub.add_parser(
        "diff", help="compare the KPIs of two scenario JSON artifacts")
    _add_quiet(diff)
    diff.add_argument("a", help="baseline artifact (scenarios run --json)")
    diff.add_argument("b", help="candidate artifact")
    diff.add_argument("--variant", default=None,
                      help="restrict the comparison to one variant")
    diff.add_argument("--tol", type=_positive_float, default=None,
                      metavar="PCT",
                      help="exit 1 when any KPI drifts by more than "
                           "PCT %% (timings excluded)")
    return parser


#: KPI keys excluded from ``--tol`` gating: wall-clock noise, not drift.
_DIFF_TIMING_KEYS = frozenset({"run_s"})


def _load_artifact(path: str) -> Dict:
    with open(path) as fh:
        data = json.load(fh)
    variants = data.get("variants") if isinstance(data, dict) else None
    if (not isinstance(variants, dict)
            or not all(isinstance(v, dict) for v in variants.values())):
        raise ValueError(f"{path} is not a scenario artifact "
                         f"(expected the `scenarios run --json` schema)")
    return data


def _scenarios_diff(args) -> int:
    """Compare two ``scenarios run --json`` artifacts KPI-by-KPI."""
    say = _say(args)
    try:
        a = _load_artifact(args.a)
        b = _load_artifact(args.b)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if a.get("scenario") != b.get("scenario"):
        say(f"note: comparing different scenarios "
              f"({a.get('scenario')!r} vs {b.get('scenario')!r})")
    names_a, names_b = set(a["variants"]), set(b["variants"])
    shared = sorted(names_a & names_b)
    if args.variant is not None:
        if args.variant not in shared:
            print(f"error: variant {args.variant!r} not in both artifacts "
                  f"(shared: {shared})", file=sys.stderr)
            return 2
        shared = [args.variant]
    say(f"Scenario {a.get('scenario')}: {args.a} vs {args.b}")
    for only, path in ((names_a - names_b, args.a),
                       (names_b - names_a, args.b)):
        if only and args.variant is None:
            say(f"  only in {path}: {sorted(only)}")
    worst = 0.0
    for name in shared:
        ka = a["variants"][name].get("kpis", {})
        kb = b["variants"][name].get("kpis", {})
        say(f"\nvariant {name}")
        say(f"  {'kpi':<24} {'a':>12} {'b':>12} {'delta':>12} {'%':>9}")
        for key in sorted(set(ka) | set(kb)):
            va, vb = ka.get(key), kb.get(key)
            if not (isinstance(va, (int, float))
                    and isinstance(vb, (int, float))):
                say(f"  {key:<24} {'?' if va is None else va:>12} "
                      f"{'?' if vb is None else vb:>12}")
                continue
            delta = vb - va
            if va != 0:
                pct = 100.0 * delta / abs(va)
                pct_s = f"{pct:+8.2f}%"
            else:
                pct = float("inf") if delta else 0.0
                pct_s = "     n/a" if delta else "   +0.00%"
            if key not in _DIFF_TIMING_KEYS:
                worst = max(worst, abs(pct))
            say(f"  {key:<24} {va:>12.6g} {vb:>12.6g} {delta:>+12.6g} "
                  f"{pct_s:>9}")
    if args.tol is not None and worst > args.tol:
        print(f"\nFAIL: worst KPI drift {worst:.2f}% exceeds "
              f"--tol {args.tol}%", file=sys.stderr)
        return 1
    return 0


def _scenarios_main(argv) -> int:
    args = build_scenario_parser().parse_args(argv)
    if args.command == "diff":
        return _scenarios_diff(args)
    say = _say(args)
    if args.command == "list":
        for name in REGISTRY.names():
            say(f"{name:<22} {REGISTRY.describe(name)}")
        return 0
    if args.name not in REGISTRY:
        print(f"unknown scenario {args.name!r}; registered scenarios: "
              f"{', '.join(REGISTRY.names())}", file=sys.stderr)
        return 2
    try:
        spec = REGISTRY.spec(args.name, n_intervals=args.intervals,
                             seed=args.seed, scale=args.scale)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.csv and not spec.variants:
        # Fail before the (possibly long) run: analysis-only scenarios
        # produce no per-interval series to write.
        print(f"error: --csv: scenario {args.name!r} is analysis-only "
              f"and has no per-interval series; use --json",
              file=sys.stderr)
        return 2
    sink_factory = None
    if args.stream is not None:
        if not spec.variants:
            print(f"error: --stream: scenario {args.name!r} is "
                  f"analysis-only and plays no intervals to stream",
                  file=sys.stderr)
            return 2
        from .sim.metrics import STREAM_SUFFIXES, open_sink
        root, ext = os.path.splitext(args.stream)
        if ext not in STREAM_SUFFIXES:
            # Fail before the (possibly long) run, with the sink
            # layer's own phrasing.
            print(f"error: --stream: unknown stream format "
                  f"{args.stream!r}: expected a path ending in "
                  + " or ".join(STREAM_SUFFIXES), file=sys.stderr)
            return 2
        if len(spec.variants) > 1:
            def sink_factory(name, _root=root, _ext=ext):
                return open_sink(f"{_root}.{name}{_ext}")
        else:
            def sink_factory(name, _path=args.stream):
                return open_sink(_path)
    result = run_scenario(spec, sink_factory=sink_factory)
    say(format_scenario_result(result))
    for name, path in sorted(result.streams.items()):
        say(f"[streamed {name} -> {path}]")
    if args.json:
        result.save_json(args.json, include_series=not args.no_series)
        say(f"[wrote {args.json}]")
    if args.csv:
        try:
            result.save_csv(args.csv)
        except ValueError as exc:
            print(f"error: --csv: {exc}", file=sys.stderr)
            return 2
        say(f"[wrote {args.csv}]")
    return 0


def build_arena_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro arena",
        description="Policy tournaments and scenario fuzzing "
                    "(repro.arena).")
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser(
        "run", help="run the policy x draw tournament matrix")
    run.add_argument("--seed", type=_seed_int, default=0,
                     help="tournament seed: derives every draw "
                          "(default: 0)")
    run.add_argument("--draws", type=_positive_int, default=4,
                     help="randomized scenario draws (default: 4)")
    run.add_argument("--intervals", type=_positive_int, default=12,
                     help="scheduling rounds per draw (default: 12)")
    run.add_argument("--policies", default="smoke",
                     help="comma-separated roster, or 'smoke' "
                          "(training-free subset) / 'all' "
                          "(default: smoke)")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="write the leaderboard artifact "
                          "(scenarios-diff compatible)")
    run.add_argument("--no-invariants", action="store_true",
                     help="skip the per-cell invariant audit")
    run.add_argument("--no-parity", action="store_true",
                     help="skip the per-draw batch/scalar parity check")
    _add_quiet(run)
    fuzz = sub.add_parser(
        "fuzz", help="mutate scenario specs hunting invariant breaks")
    fuzz.add_argument("--budget", type=_positive_int,
                      default=int(os.environ.get(
                          "REPRO_ARENA_FUZZ_BUDGET", "5")),
                      help="fuzz trials (default: 5, or the "
                           "REPRO_ARENA_FUZZ_BUDGET env var — the "
                           "nightly-profile knob)")
    fuzz.add_argument("--seed", type=_seed_int, default=0,
                      help="fuzz seed (default: 0)")
    fuzz.add_argument("--intervals", type=_positive_int, default=8,
                      help="scheduling rounds per trial (default: 8)")
    fuzz.add_argument("--policies", default="smoke",
                      help="roster to fuzz (see `arena run --policies`)")
    fuzz.add_argument("--floor", type=float, default=None,
                      help="flag trials where --floor-policy drops "
                           "below this avg SLA")
    fuzz.add_argument("--floor-policy", default="bf_ml_calibrated",
                      help="policy watched by --floor "
                           "(default: bf_ml_calibrated)")
    fuzz.add_argument("--repro-dir", metavar="DIR", default=None,
                      help="write shrunk repro specs here "
                           "(e.g. tests/arena/repros)")
    fuzz.add_argument("--no-parity", action="store_true",
                      help="skip the batch/scalar parity check")
    _add_quiet(fuzz)
    return parser


def _arena_policies(text: str):
    from .arena import DEFAULT_ROSTER, SMOKE_ROSTER
    if text == "smoke":
        return SMOKE_ROSTER
    if text == "all":
        return DEFAULT_ROSTER
    return tuple(n.strip() for n in text.split(",") if n.strip())


def _arena_main(argv) -> int:
    args = build_arena_parser().parse_args(argv)
    say = _say(args)
    from .arena import (ArenaConfig, format_leaderboard, run_fuzz,
                        run_tournament)
    try:
        if args.command == "run":
            config = ArenaConfig(
                seed=args.seed, n_draws=args.draws,
                policies=_arena_policies(args.policies),
                n_intervals=args.intervals,
                check_invariants=not args.no_invariants,
                check_parity=not args.no_parity)
            result = run_tournament(config, progress=say)
            say(format_leaderboard(result))
            if args.json:
                result.save_json(args.json)
                say(f"[wrote {args.json}]")
            return 1 if result.violations else 0
        findings = run_fuzz(
            budget=args.budget, seed=args.seed,
            policies=_arena_policies(args.policies),
            n_intervals=args.intervals, floor=args.floor,
            floor_policy=args.floor_policy,
            check_parity=not args.no_parity,
            repro_dir=args.repro_dir, progress=say)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    hard = [f for f in findings if f.kind in ("invariant", "parity")]
    for f in findings:
        say(f"{f.kind}: {f.detail} (trial {f.trial}, "
            f"mutations {', '.join(f.mutations)}, "
            f"shrunk {f.shrink_steps} steps)")
    if not findings:
        say(f"fuzz: {args.budget} trial(s), no findings")
    # Floor findings are performance regressions to triage, not
    # correctness breaks — only the latter fail the command.
    return 1 if hard else 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the warm placement server (repro.service).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8421,
                        help="bind port (default: 8421; 0 = ephemeral)")
    parser.add_argument("--preload", action="append", default=[],
                        metavar="SCENARIO[:SESSION]",
                        help="create a session from this registered "
                             "scenario before accepting requests "
                             "(repeatable; session name defaults to the "
                             "scenario name)")
    parser.add_argument("--estimator", choices=("ml", "oracle"),
                        default="ml",
                        help="estimator for preloaded sessions "
                             "(default: ml)")
    parser.add_argument("--max-batch", type=_positive_int, default=32,
                        help="micro-batcher: max coalesced place "
                             "queries per scoring pass (default: 32)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batcher: max wait for stragglers "
                             "after the first query (default: 2.0)")
    _add_quiet(parser)
    return parser


def _serve_main(argv) -> int:
    args = build_serve_parser().parse_args(argv)
    if args.max_wait_ms < 0:
        print("error: --max-wait-ms must be >= 0", file=sys.stderr)
        return 2
    from .service import serve
    preload = []
    for entry in args.preload:
        scenario, _, session = entry.partition(":")
        if scenario not in REGISTRY:
            print(f"unknown scenario {scenario!r}; registered scenarios: "
                  f"{', '.join(REGISTRY.names())}", file=sys.stderr)
            return 2
        preload.append((session or scenario, scenario))
    return serve(host=args.host, port=args.port, preload=tuple(preload),
                 estimator=args.estimator, max_batch=args.max_batch,
                 max_wait_ms=args.max_wait_ms, quiet=args.quiet)


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Contract linter + lock-discipline race analyzer "
                    "(repro.lint): determinism, aliasing, lock "
                    "discipline, parity pairs.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        metavar="PATH",
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="repo root anchoring relative paths and "
                             "the parity rule's tests/ + docs/ lookups "
                             "(default: inferred from PATH)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline JSON: findings recorded there "
                             "warn instead of failing")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="record the current findings as the new "
                             "baseline at PATH and exit 0")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the findings artifact (new + "
                             "baselined rows) as JSON")
    _add_quiet(parser)
    return parser


def _lint_main(argv) -> int:
    args = build_lint_parser().parse_args(argv)
    say = _say(args)
    from .lint import (Baseline, apply_baseline, findings_to_json,
                       render_findings, run_lint)

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    baseline = Baseline()
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: --baseline: {exc}", file=sys.stderr)
            return 2

    findings = run_lint(paths=args.paths, root=args.root)

    if args.write_baseline is not None:
        Baseline.from_findings(findings).save(args.write_baseline)
        say(f"[wrote baseline with {len(findings)} finding(s) "
            f"to {args.write_baseline}]")
        return 0

    new, known = apply_baseline(findings, baseline)
    report = render_findings(new, known)
    if report:
        say(report)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(findings_to_json(new, known), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        say(f"[wrote {args.json}]")
    say(f"lint: {len(new)} new finding(s), {len(known)} baselined")
    return 1 if new else 0


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenarios":
        return _scenarios_main(argv[1:])
    if argv and argv[0] == "arena":
        return _arena_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        for name in sorted(ARTIFACTS):
            print(f"{name:<12} {ARTIFACTS[name][1]}")
        return 0
    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in names:
        runner, description = ARTIFACTS[name]
        print(f"== {name}: {description} ==")
        t0 = time.perf_counter()
        print(runner(args))
        print(f"[{name} regenerated in {time.perf_counter() - t0:.1f} s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
