"""Check that relative markdown links point at real files.

Usage::

    python docs/check_links.py README.md docs/*.md

Scans each given markdown file for ``[text](target)`` links, ignores
external URLs and pure anchors, and verifies every relative target exists
on disk (resolved against the linking file's directory). Exits non-zero
listing the broken links, so CI can gate on it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def broken_links(path: Path) -> list:
    out = []
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            out.append((str(path), target))
    return out


def main(argv: list) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]")
        return 2
    bad = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            bad.append((name, "<file itself missing>"))
            continue
        bad.extend(broken_links(path))
    if bad:
        for source, target in bad:
            print(f"BROKEN: {source} -> {target}")
        return 1
    print(f"all links resolve in {len(argv)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
