"""Intra-DC (de-)consolidation: why learned models beat monitored usage.

Reproduces the paper's Figure 4 story on one datacenter with four Atom
hosts and five web-service VMs under heavy diurnal load:

* plain Best-Fit trusts last-round *observed* usage — under contention a
  VM's observed usage is capped by what it was granted, so the scheduler
  never sees the real demand and keeps everything packed while SLA burns;
* Best-Fit with 2x overbooking protects SLA by brute force (energy bill);
* ML-enhanced Best-Fit predicts the real requirement from gateway load
  features and (de-)consolidates exactly when needed.

Since PR 4 the experiment itself *is* the registered ``figure4``
scenario; the script looks it up at a demo-friendly 16-hour horizon,
runs it, and draws the sparklines from the result's run histories.

Run:  python examples/intra_dc_consolidation.py
      python -m repro.cli scenarios run figure4 --intervals 96   # same runs
"""

import numpy as np

from repro.experiments import REGISTRY, run_scenario


def spark(values, width=60):
    ticks = " .:-=+*#%@"
    step = max(1, len(values) // width)
    v = np.asarray(values, dtype=float)[::step]
    lo, hi = v.min(), v.max()
    if hi <= lo:
        return ticks[1] * len(v)
    return "".join(ticks[int((x - lo) / (hi - lo) * (len(ticks) - 1))]
                   for x in v)


def main() -> None:
    print("training models ...")
    result = run_scenario(REGISTRY.spec("figure4", n_intervals=96))
    histories = {name: v.history for name, v in result.variants.items()}

    print(f"\n{'variant':<7} {'avg SLA':>8} {'avg W':>8} {'EUR/h':>8} "
          f"{'PMs on':>7}")
    for name, history in histories.items():
        s = history.summary()
        print(f"{name:<7} {s.avg_sla:>8.3f} {s.avg_watts:>8.1f} "
              f"{s.avg_eur_per_hour:>8.3f} "
              f"{history.pms_on_series().mean():>7.2f}")

    print("\nSLA over the day (10-minute rounds):")
    for name, history in histories.items():
        print(f"  {name:<6}|{spark(history.sla_series())}|")
    print("\nactive PMs over the day — watch BF-ML breathe with the load:")
    load = histories["BF-ML"].total_rps_series()
    print(f"  load  |{spark(load)}|")
    for name, history in histories.items():
        print(f"  {name:<6}|{spark(history.pms_on_series())}|")


if __name__ == "__main__":
    main()
