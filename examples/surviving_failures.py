"""Operating through host failures with on-line learning.

A production fleet loses machines.  This example combines two extensions
built on the paper's framework:

* :class:`repro.sim.failures.FailureInjector` crashes hosts at random and
  repairs them after a few rounds; orphaned VMs earn zero SLA until
  re-placed.
* :class:`repro.core.online.OnlineLearningScheduler` (paper future work
  §VI.4) re-places orphans with ML-driven Best-Fit while retraining its
  models on the freshest monitoring window.

Run:  python examples/surviving_failures.py
"""

import numpy as np

from repro.core.online import OnlineLearningScheduler
from repro.sim.engine import run_simulation
from repro.sim.failures import FailureInjector
from repro.sim.monitor import Monitor
from repro.experiments.scenario import (ScenarioConfig, multidc_system,
                                        multidc_trace)
from repro.experiments.training import train_paper_models


def main() -> None:
    config = ScenarioConfig(n_intervals=96, scale=3.0, seed=21)
    trace = multidc_trace(config)

    print("bootstrap training ...")
    bootstrap, _ = train_paper_models(lambda: multidc_system(config),
                                      trace, seed=7)

    def run(with_scheduler: bool):
        system = multidc_system(config)
        injector = FailureInjector(rng=np.random.default_rng(5),
                                   fail_prob_per_interval=0.04,
                                   repair_intervals=6, max_down=2)
        monitor = Monitor(rng=np.random.default_rng(6))
        scheduler = None
        if with_scheduler:
            scheduler = OnlineLearningScheduler(
                monitor=monitor, bootstrap=bootstrap, retrain_every=12,
                window=1500, min_samples=120)
        history = run_simulation(system, trace, scheduler=scheduler,
                                 monitor=monitor,
                                 failure_injector=injector)
        return history, injector, scheduler

    managed, inj_a, scheduler = run(with_scheduler=True)
    unmanaged, inj_b, _ = run(with_scheduler=False)

    print(f"\ninjected failures: {len(inj_a.events)} "
          f"(same deterministic trace in both runs)")
    for event in inj_a.events[:6]:
        print(f"  t={event.t:>3}  {event.pm_id} down, orphaned "
              f"{list(event.orphaned_vms)}, repair at t={event.repair_at}")

    sm, su = managed.summary(), unmanaged.summary()
    print(f"\n{'run':<22} {'avg SLA':>8} {'EUR/h':>8} {'migrations':>11}")
    print(f"{'online-ML managed':<22} {sm.avg_sla:>8.3f} "
          f"{sm.avg_eur_per_hour:>8.3f} {sm.n_migrations:>11d}")
    print(f"{'unmanaged (no resched)':<22} {su.avg_sla:>8.3f} "
          f"{su.avg_eur_per_hour:>8.3f} {su.n_migrations:>11d}")
    if scheduler is not None:
        print(f"\nmodel retrains during the run: "
              f"{len(scheduler.retrain_history)} "
              f"(rounds {scheduler.retrain_history})")


if __name__ == "__main__":
    main()
