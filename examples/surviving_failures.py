"""Operating through host failures with on-line learning.

A production fleet loses machines.  This example combines two extensions
built on the paper's framework:

* :class:`repro.sim.failures.FailureInjector` crashes hosts at random and
  repairs them after a few rounds; orphaned VMs earn zero SLA until
  re-placed.
* :class:`repro.core.online.OnlineLearningScheduler` (paper future work
  §VI.4) re-places orphans with ML-driven Best-Fit while retraining its
  models on the freshest monitoring window.

Since PR 4 both runs live in the registered ``surviving_failures`` spec
(:mod:`repro.experiments.catalog`); the script looks it up, runs it, and
prints the failure log and the managed-vs-unmanaged comparison.

Run:  python examples/surviving_failures.py
      python -m repro.cli scenarios run surviving_failures   # same runs
"""

from repro.experiments import REGISTRY, run_scenario


def main() -> None:
    print("bootstrap training ...")
    result = run_scenario(REGISTRY.spec("surviving_failures"))
    managed = result.variant("managed")
    unmanaged = result.variant("unmanaged")

    injector = managed.failure_injector
    print(f"\ninjected failures: {len(injector.events)} "
          f"(same deterministic schedule in both runs)")
    for event in injector.events[:6]:
        print(f"  t={event.t:>3}  {event.pm_id} down, orphaned "
              f"{list(event.orphaned_vms)}, repair at t={event.repair_at}")

    sm, su = managed.summary, unmanaged.summary
    print(f"\n{'run':<22} {'avg SLA':>8} {'EUR/h':>8} {'migrations':>11}")
    print(f"{'online-ML managed':<22} {sm.avg_sla:>8.3f} "
          f"{sm.avg_eur_per_hour:>8.3f} {sm.n_migrations:>11d}")
    print(f"{'unmanaged (no resched)':<22} {su.avg_sla:>8.3f} "
          f"{su.avg_eur_per_hour:>8.3f} {su.n_migrations:>11d}")
    scheduler = managed.scheduler
    if scheduler is not None and hasattr(scheduler, "retrain_history"):
        print(f"\nmodel retrains during the run: "
              f"{len(scheduler.retrain_history)} "
              f"(rounds {scheduler.retrain_history})")


if __name__ == "__main__":
    main()
