"""Quickstart: the paper's pipeline end to end — now one registry lookup.

Since PR 4 the whole experiment is a declarative spec registered as
``quickstart`` (:mod:`repro.experiments.catalog`): the canonical 4-DC /
5-VM scenario (Table II latencies and tariffs, EC2-like pricing,
RT0 = 0.1 s / alpha = 10 SLAs), an exploration harvest training the seven
Table I predictors, and a static-vs-ML-Best-Fit day (the Table III
comparison).  The script only looks the spec up, runs it, and prints.

Run:  python examples/quickstart.py
      python -m repro.cli scenarios run quickstart   # same experiment
"""

from repro.experiments import REGISTRY, run_scenario


def main() -> None:
    # A shorter-than-paper day so the demo finishes in seconds.
    spec = REGISTRY.spec("quickstart")

    print("training the Table I predictors on an exploration harvest ...")
    result = run_scenario(spec)
    print(f"  {len(result.monitor.vm_samples)} monitored samples")
    for report in result.models.table1():
        print("  " + report.row())

    print("\nstatic vs ML-driven dynamic scheduling ...")
    print(f"\n{'scenario':<10} {'EUR/h':>8} {'avg W':>8} {'avg SLA':>8} "
          f"{'migrations':>11}")
    for name in ("static", "dynamic"):
        s = result.variant(name).summary
        print(f"{name:<10} {s.avg_eur_per_hour:>8.3f} {s.avg_watts:>8.1f} "
              f"{s.avg_sla:>8.3f} {s.n_migrations:>11d}")
    static = result.variant("static").summary
    dynamic = result.variant("dynamic").summary
    saving = 1.0 - dynamic.avg_watts / static.avg_watts
    print(f"\nenergy saving: {100 * saving:.1f} % "
          f"(paper Table III: ~42 % with SLA slightly up)")


if __name__ == "__main__":
    main()
