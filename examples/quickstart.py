"""Quickstart: the paper's pipeline end to end in ~40 lines of API.

1. Build the canonical 4-DC / 5-VM scenario (Table II latencies and
   tariffs, EC2-like pricing, RT0 = 0.1 s / alpha = 10 SLAs).
2. Harvest monitored data and train the seven Table I predictors.
3. Run a day with the static baseline and with ML-enhanced Best-Fit.
4. Compare energy, SLA and profit (the Table III comparison).

Run:  python examples/quickstart.py
"""

from repro.core.policies import bf_ml_scheduler, static_scheduler
from repro.sim.engine import run_simulation
from repro.experiments.scenario import (ScenarioConfig, multidc_system,
                                        multidc_trace)
from repro.experiments.training import train_paper_models


def main() -> None:
    # A shorter-than-paper day so the demo finishes in seconds.
    config = ScenarioConfig(n_intervals=72, scale=3.0, seed=42)
    trace = multidc_trace(config)

    print("training the Table I predictors on an exploration harvest ...")
    models, monitor = train_paper_models(
        lambda: multidc_system(config), trace, seed=7)
    print(f"  {len(monitor.vm_samples)} monitored samples")
    for report in models.table1():
        print("  " + report.row())

    print("\nrunning static vs ML-driven dynamic scheduling ...")
    static = run_simulation(multidc_system(config), trace,
                            scheduler=static_scheduler()).summary()
    dynamic = run_simulation(multidc_system(config), trace,
                             scheduler=bf_ml_scheduler(models)).summary()

    print(f"\n{'scenario':<10} {'EUR/h':>8} {'avg W':>8} {'avg SLA':>8} "
          f"{'migrations':>11}")
    for name, s in (("static", static), ("dynamic", dynamic)):
        print(f"{name:<10} {s.avg_eur_per_hour:>8.3f} {s.avg_watts:>8.1f} "
              f"{s.avg_sla:>8.3f} {s.n_migrations:>11d}")
    saving = 1.0 - dynamic.avg_watts / static.avg_watts
    print(f"\nenergy saving: {100 * saving:.1f} % "
          f"(paper Table III: ~42 % with SLA slightly up)")


if __name__ == "__main__":
    main()
