"""Follow-the-sun scheduling with green-energy tariffs.

The paper suggests (§II, §VI) that a "follow the sun/wind" policy drops out
of the same profit objective once energy prices vary with renewable
availability.  This example wires the :mod:`repro.sim.tariffs` solar model
into the canonical 4-DC scenario: when the sun shines over a DC, locally
generated solar power makes its electricity nearly free, and the scheduler
— unchanged — starts walking consolidated VMs westward around the planet.

Run:  python examples/follow_the_sun.py
"""

import numpy as np

from repro.core.model import ObjectiveWeights
from repro.core.policies import oracle_scheduler
from repro.sim.engine import run_simulation
from repro.sim.tariffs import solar_tariff
from repro.experiments.scenario import (ScenarioConfig, multidc_system,
                                        multidc_trace)

LOCATIONS = ("BRS", "BNG", "BCN", "BST")


def main() -> None:
    config = ScenarioConfig(n_intervals=144, scale=2.0, affinity_boost=1.0,
                            seed=11)
    trace = multidc_trace(config)

    # Exaggerated brown-energy price so the solar discount dominates the
    # (latency-flat) revenue term; the paper predicts exactly this regime
    # "as energy costs rise and markets become more heterogeneous".
    tariffs = solar_tariff({loc: 3.0 for loc in LOCATIONS},
                           n_intervals=config.n_intervals,
                           solar_discount=0.9)

    system = multidc_system(config)
    system.tariff_schedule = tariffs
    scheduler = oracle_scheduler(
        weights=ObjectiveWeights(revenue=1.0, energy=1.0, migration=1.0))
    history = run_simulation(system, trace, scheduler=scheduler)

    print("where do the VMs sit over the day?  ('#' = >= 1 VM hosted)")
    print("sim hour:  " + "".join(f"{h:<6d}" for h in range(0, 24, 4)))
    for loc in LOCATIONS:
        row = []
        for report in history.reports:
            here = sum(1 for v in report.vms.values()
                       if v.location == loc)
            row.append("#" if here else " ")
        # show the cheap (sunny) window as '.'
        sunny = [tariffs.price(loc, t) < 1.0 for t in
                 range(config.n_intervals)]
        strip = "".join(c if c == "#" else ("." if s else " ")
                        for c, s in zip(row, sunny))
        print(f"  {loc} |{strip[::2]}|")
    print("  ('.' marks that DC's solar window)")

    s = history.summary()
    print(f"\n{s.n_migrations} migrations, avg SLA {s.avg_sla:.3f}, "
          f"energy cost {s.energy_cost_eur:.3f} EUR")

    # Compare with a static run under the same tariffs.
    static_system = multidc_system(config)
    static_system.tariff_schedule = tariffs
    static = run_simulation(static_system, trace).summary()
    print(f"static energy cost {static.energy_cost_eur:.3f} EUR "
          f"-> follow-the-sun saves "
          f"{100 * (1 - s.energy_cost_eur / static.energy_cost_eur):.0f} % "
          "of the energy bill")


if __name__ == "__main__":
    main()
