"""Follow-the-sun scheduling with green-energy tariffs.

The paper suggests (§II, §VI) that a "follow the sun/wind" policy drops out
of the same profit objective once energy prices vary with renewable
availability.  Since PR 4 the experiment is the registered
``follow_the_sun`` spec (:mod:`repro.experiments.catalog`): solar tariffs
over the canonical 4-DC scenario make a DC's electricity nearly free while
its sun shines, and the scheduler — unchanged — starts walking consolidated
VMs westward around the planet.  The script looks the spec up, runs it, and
draws where the VMs sat.

Run:  python examples/follow_the_sun.py
      python -m repro.cli scenarios run follow_the_sun   # same experiment
"""

from repro.experiments import REGISTRY, run_scenario

LOCATIONS = ("BRS", "BNG", "BCN", "BST")


def main() -> None:
    spec = REGISTRY.spec("follow_the_sun")
    result = run_scenario(spec)
    variant = result.variant("follow_the_sun")
    history = variant.history
    n_intervals = len(history.reports)
    # The same schedule the engine built from the spec's TariffSpec —
    # rebuilt here only to shade each DC's solar window in the plot.
    tariffs = spec.tariffs.build(spec.fleet.build()[0], n_intervals,
                                 variant.trace.interval_s)

    print("where do the VMs sit over the day?  ('#' = >= 1 VM hosted)")
    print("sim hour:  " + "".join(f"{h:<6d}" for h in range(0, 24, 4)))
    for loc in LOCATIONS:
        row = []
        for report in history.reports:
            here = sum(1 for v in report.vms.values()
                       if v.location == loc)
            row.append("#" if here else " ")
        # show the cheap (sunny) window as '.'
        sunny = [tariffs.price(loc, t) < 1.0 for t in range(n_intervals)]
        strip = "".join(c if c == "#" else ("." if s else " ")
                        for c, s in zip(row, sunny))
        print(f"  {loc} |{strip[::2]}|")
    print("  ('.' marks that DC's solar window)")

    s = result.variant("follow_the_sun").summary
    print(f"\n{s.n_migrations} migrations, avg SLA {s.avg_sla:.3f}, "
          f"energy cost {s.energy_cost_eur:.3f} EUR")

    # The spec's static variant ran under the same tariffs.
    static = result.variant("static").summary
    print(f"static energy cost {static.energy_cost_eur:.3f} EUR "
          f"-> follow-the-sun saves "
          f"{100 * (1 - s.energy_cost_eur / static.energy_cost_eur):.0f} % "
          "of the energy bill")


if __name__ == "__main__":
    main()
