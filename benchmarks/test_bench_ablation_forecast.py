"""Ablation A4 — planning on forecast vs measured current-interval load.

The experiment harness (like the paper's) hands the scheduler the load the
round is about to receive.  A deployed system only has history.  This
ablation runs BF-ML with the seasonal+EWMA forecaster (strictly causal) and
measures how much of the dynamic scheduler's advantage survives.
"""

import pytest

from repro.core.policies import bf_ml_scheduler, static_scheduler
from repro.sim.engine import run_simulation
from repro.workload.forecast import LoadForecaster
from repro.experiments.scenario import multidc_system


@pytest.fixture(scope="module")
def runs(paper_config, paper_trace, paper_models):
    out = {}
    out["static"] = run_simulation(multidc_system(paper_config), paper_trace,
                                   scheduler=static_scheduler()).summary()
    out["measured"] = run_simulation(
        multidc_system(paper_config), paper_trace,
        scheduler=bf_ml_scheduler(paper_models)).summary()
    out["forecast"] = run_simulation(
        multidc_system(paper_config), paper_trace,
        scheduler=bf_ml_scheduler(
            paper_models, forecaster=LoadForecaster(period=144))).summary()
    return out


def test_bench_forecast_scheduling(benchmark, paper_config, paper_trace,
                                   paper_models):
    out = benchmark.pedantic(
        lambda: run_simulation(
            multidc_system(paper_config), paper_trace,
            scheduler=bf_ml_scheduler(
                paper_models, forecaster=LoadForecaster(period=144))),
        rounds=1, iterations=1)
    assert len(out) == paper_config.n_intervals


class TestShape:
    def test_forecast_still_saves_energy(self, runs):
        assert runs["forecast"].avg_watts < 0.85 * runs["static"].avg_watts

    def test_forecast_sla_near_measured(self, runs):
        assert runs["forecast"].avg_sla > runs["measured"].avg_sla - 0.05

    def test_report(self, runs):
        print()
        print("A4: BF-ML on measured vs forecast load")
        print(f"{'input':<9} {'avg SLA':>8} {'avg W':>8} {'EUR/h':>8}")
        for name in ("static", "measured", "forecast"):
            s = runs[name]
            print(f"{name:<9} {s.avg_sla:>8.3f} {s.avg_watts:>8.1f} "
                  f"{s.avg_eur_per_hour:>8.3f}")
