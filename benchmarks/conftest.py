"""Shared fixtures for the benchmark harness.

The headline model set (trained on the full canonical scenario, as in the
paper) is session-scoped: several benches reuse it so the expensive harvest
runs once.
"""

import numpy as np
import pytest

from repro.experiments.scenario import (ScenarioConfig, multidc_system,
                                        multidc_trace)
from repro.experiments.training import train_paper_models


@pytest.fixture(scope="session")
def paper_config():
    return ScenarioConfig()


@pytest.fixture(scope="session")
def paper_trace(paper_config):
    return multidc_trace(paper_config)


@pytest.fixture(scope="session")
def paper_models(paper_config, paper_trace):
    models, _ = train_paper_models(lambda: multidc_system(paper_config),
                                   paper_trace, seed=7)
    return models
