"""Bench T3 — regenerate Table III (static vs dynamic multi-DC).

Paper:  Static-Global 0.745 EUR/h, 175.9 W, SLA 0.921
        Dynamic       0.757 EUR/h, 102.0 W, SLA 0.930

Shape: the dynamic scheduler saves a large energy fraction (paper ~42 %)
while holding SLA and profit at least even.
"""

import pytest

from repro.experiments.table3 import format_table3, run_table3


@pytest.fixture(scope="module")
def result(paper_config, paper_models):
    return run_table3(paper_config, models=paper_models)


def test_bench_table3(benchmark, paper_config, paper_models):
    out = benchmark.pedantic(
        lambda: run_table3(paper_config, models=paper_models),
        rounds=1, iterations=1)
    print()
    print(format_table3(out))


class TestShape:
    def test_static_watts_near_paper(self, result):
        """4 always-on Atom PMs with cooling: the paper measured 175.9 W."""
        assert 150.0 <= result.static_summary.avg_watts <= 210.0

    def test_dynamic_saves_substantial_energy(self, result):
        assert result.energy_saving_fraction > 0.20

    def test_sla_roughly_held(self, result):
        """Paper: +0.009; we accept a small band around zero."""
        assert abs(result.sla_delta) < 0.03

    def test_profit_not_worse(self, result):
        assert result.profit_delta_eur_h > -0.01

    def test_dynamic_migrates_static_does_not(self, result):
        assert result.static_summary.n_migrations == 0
        assert result.dynamic_summary.n_migrations > 0
