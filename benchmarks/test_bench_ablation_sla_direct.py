"""Ablation A3 — predict SLA directly vs predict RT then compute SLA.

Paper §IV.B: "better results are obtained if SLA is predicted directly,
possibly because it has a bounded range so it is less sensitive to
outliers."  Beyond the Table I validation comparison (bench T1), this
ablation measures the *scheduling* consequence: BF-ML driven by the direct
k-NN SLA model vs the same scheduler composing SLA from the M5P RT model.
"""

import pytest

from repro.core.policies import bf_ml_scheduler
from repro.sim.engine import run_simulation
from repro.experiments.scenario import multidc_system


@pytest.fixture(scope="module")
def runs(paper_config, paper_trace, paper_models):
    out = {}
    for mode in ("direct", "rt"):
        history = run_simulation(
            multidc_system(paper_config), paper_trace,
            scheduler=bf_ml_scheduler(paper_models, sla_mode=mode))
        out[mode] = history.summary()
    return out


def test_bench_sla_direct_scheduling(benchmark, paper_config, paper_trace,
                                     paper_models):
    out = benchmark.pedantic(
        lambda: run_simulation(
            multidc_system(paper_config), paper_trace,
            scheduler=bf_ml_scheduler(paper_models, sla_mode="direct")),
        rounds=1, iterations=1)
    assert len(out) == paper_config.n_intervals


class TestShape:
    def test_direct_mode_no_worse_on_sla(self, runs):
        assert runs["direct"].avg_sla >= runs["rt"].avg_sla - 0.01

    def test_direct_mode_no_worse_on_profit(self, runs):
        assert (runs["direct"].avg_eur_per_hour
                >= runs["rt"].avg_eur_per_hour - 0.005)

    def test_report(self, runs):
        print()
        print("A3: scheduling with SLA-direct vs RT-then-SLA")
        print(f"{'mode':<8} {'avg SLA':>8} {'avg W':>8} {'EUR/h':>8} "
              f"{'migr':>5}")
        for mode, s in runs.items():
            print(f"{mode:<8} {s.avg_sla:>8.3f} {s.avg_watts:>8.1f} "
                  f"{s.avg_eur_per_hour:>8.3f} {s.n_migrations:>5d}")
