"""Bench T1 — regenerate Table I (per-predictor learning quality).

Runs the full pipeline — exploration harvest, 66/34 split, training the
seven paper models — and prints the reproduced table.  Shape assertions
encode the paper's claims: high correlations throughout, heavy-tailed RT
errors (err-std >> MAE), SLA predicted on a bounded range.
"""

import pytest

from repro.experiments.table1 import format_table1, run_table1


@pytest.fixture(scope="module")
def result():
    return run_table1()


def test_bench_table1(benchmark, result):
    out = benchmark.pedantic(lambda: run_table1(), rounds=1, iterations=1)
    print()
    print(format_table1(out))


class TestShape:
    """Paper Table I: correlations 0.777-0.994 across the seven elements."""

    def test_all_correlations_high(self, result):
        for report in result.reports:
            assert report.correlation > 0.65, report.name

    def test_mem_is_most_linear(self, result):
        by_name = {r.name: r for r in result.reports}
        assert by_name["Predict VM MEM"].correlation > 0.95

    def test_rt_errors_heavy_tailed(self, result):
        """Paper: RT err-std (1.279 s) dwarfs RT MAE (0.234 s)."""
        rt = next(r for r in result.reports if r.name == "Predict VM RT")
        assert rt.err_std > 1.5 * rt.mae

    def test_sla_bounded_range(self, result):
        sla = next(r for r in result.reports if r.name == "Predict VM SLA")
        assert sla.data_min >= 0.0 and sla.data_max <= 1.0

    def test_sla_direct_beats_via_rt(self, result):
        """Paper §IV.B: 'better results are obtained if SLA is predicted
        directly'."""
        assert result.direct_wins

    def test_vm_cpu_range_matches_paper_envelope(self, result):
        """Paper range [0, 400] %CPU."""
        cpu = next(r for r in result.reports if r.name == "Predict VM CPU")
        assert cpu.data_min >= 0.0
        assert cpu.data_max <= 450.0  # capped by the 4-core host + noise
