"""Extension bench — on-line learning under workload drift (paper §VI.4).

The paper motivates continuous retraining with "changes in either
application behavior, hardware or middleware changes, or workload
characteristics".  This bench injects exactly such a change: halfway
through the run every request becomes 2x more CPU-expensive (an
application regression).  A scheduler frozen on pre-drift models
mispredicts requirements after the shift; the on-line scheduler retrains on
recent samples and recovers.
"""

import numpy as np
import pytest

from repro.core.online import OnlineLearningScheduler
from repro.core.policies import bf_ml_scheduler
from repro.sim.engine import run_simulation
from repro.sim.monitor import Monitor
from repro.workload.traces import SourceSeries, WorkloadTrace
from repro.experiments.scenario import (ScenarioConfig, multidc_system,
                                        multidc_trace)
from repro.experiments.training import train_paper_models

CONFIG = ScenarioConfig(n_intervals=144, scale=2.0, seed=13)
DRIFT_FACTOR = 2.0


def drifted_trace() -> WorkloadTrace:
    """CPU cost per request jumps by DRIFT_FACTOR at half-time."""
    base = multidc_trace(CONFIG)
    half = base.n_intervals // 2
    out = WorkloadTrace(interval_s=base.interval_s)
    for key, series in base.series.items():
        cpr = series.cpu_time_per_req.copy()
        cpr[half:] *= DRIFT_FACTOR
        out.series[key] = SourceSeries(rps=series.rps.copy(),
                                       bytes_per_req=series.bytes_per_req.copy(),
                                       cpu_time_per_req=cpr)
    return out


@pytest.fixture(scope="module")
def runs():
    # Bootstrap models trained only on PRE-drift behaviour.
    pre_drift = multidc_trace(CONFIG)
    bootstrap, _ = train_paper_models(lambda: multidc_system(CONFIG),
                                      pre_drift, seed=7)
    trace = drifted_trace()
    frozen = run_simulation(multidc_system(CONFIG), trace,
                            scheduler=bf_ml_scheduler(bootstrap))
    monitor = Monitor(rng=np.random.default_rng(3))
    online = OnlineLearningScheduler(monitor=monitor, bootstrap=bootstrap,
                                     retrain_every=12, window=500,
                                     min_samples=120, seed=9)
    adaptive = run_simulation(multidc_system(CONFIG), trace,
                              scheduler=online, monitor=monitor)
    return {"frozen": frozen, "online": adaptive,
            "scheduler": online}


def test_bench_online_learning(benchmark):
    pre_drift = multidc_trace(CONFIG)
    bootstrap, _ = train_paper_models(lambda: multidc_system(CONFIG),
                                      pre_drift, seed=7)
    trace = drifted_trace()

    def run():
        monitor = Monitor(rng=np.random.default_rng(3))
        scheduler = OnlineLearningScheduler(
            monitor=monitor, bootstrap=bootstrap, retrain_every=12,
            window=500, min_samples=120, seed=9)
        return run_simulation(multidc_system(CONFIG), trace,
                              scheduler=scheduler, monitor=monitor)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(out) == CONFIG.n_intervals


class TestShape:
    def test_online_retrained_after_drift(self, runs):
        half = CONFIG.n_intervals // 2
        assert any(r >= half for r in runs["scheduler"].retrain_history)

    def test_online_no_worse_post_drift(self, runs):
        """After the drift, the adaptive run must hold at least the frozen
        run's SLA (it has strictly more information)."""
        half = CONFIG.n_intervals // 2
        frozen_post = runs["frozen"].sla_series()[half:].mean()
        online_post = runs["online"].sla_series()[half:].mean()
        assert online_post >= frozen_post - 0.02

    def test_report(self, runs):
        half = CONFIG.n_intervals // 2
        print()
        print(f"EXT: online learning under drift "
              f"(cpu-per-request x{DRIFT_FACTOR} at t={half})")
        print(f"{'run':<8} {'SLA pre':>8} {'SLA post':>9} {'EUR/h':>8}")
        for name in ("frozen", "online"):
            h = runs[name]
            pre = h.sla_series()[:half].mean()
            post = h.sla_series()[half:].mean()
            print(f"{name:<8} {pre:>8.3f} {post:>9.3f} "
                  f"{h.summary().avg_eur_per_hour:>8.3f}")
        print(f"online retrains at rounds "
              f"{runs['scheduler'].retrain_history}")
