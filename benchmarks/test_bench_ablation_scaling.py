"""Ablation A2 — scheduler runtime scaling and the §IV.C optimizations.

The paper notes Best-Fit from scratch is O(VMs x PMs) per round and that the
two-layer decomposition plus host-offer narrowing "largely reduces solving
cost".  This bench measures (a) flat Best-Fit runtime across instance sizes
and (b) the hierarchical scheduler's narrow global problem vs a flat global
problem on a multi-PM fleet.
"""

import time

import numpy as np
import pytest

from repro.core.bestfit import build_problem, descending_best_fit
from repro.core.estimators import OracleEstimator
from repro.core.hierarchical import HierarchicalScheduler
from repro.core.model import SchedulingProblem, VMRequest, HostView
from repro.core.profit import PriceBook
from repro.core.sla import PAPER_SLA
from repro.sim.demand import LoadVector
from repro.sim.machines import PhysicalMachine, VirtualMachine
from repro.sim.network import PAPER_LOCATIONS, paper_network_model
from repro.experiments.scenario import (ScenarioConfig, multidc_system,
                                        multidc_trace)


def flat_problem(n_vms, n_hosts, seed=0):
    rng = np.random.default_rng(seed)
    requests = [VMRequest(
        vm=VirtualMachine(vm_id=f"vm{i}"), contract=PAPER_SLA,
        loads={loc: LoadVector(float(rng.uniform(1, 10)), 4000.0, 0.05)
               for loc in PAPER_LOCATIONS})
        for i in range(n_vms)]
    hosts = [HostView.of(PhysicalMachine(pm_id=f"h{j}"),
                         PAPER_LOCATIONS[j % 4], 0.13)
             for j in range(n_hosts)]
    return SchedulingProblem(requests=requests, hosts=hosts,
                             network=paper_network_model(),
                             prices=PriceBook(),
                             estimator=OracleEstimator(),
                             interval_s=600.0)


@pytest.mark.parametrize("n_vms,n_hosts", [(5, 4), (10, 8), (20, 16),
                                           (40, 16)])
def test_bench_flat_bestfit_scaling(benchmark, n_vms, n_hosts):
    problem = flat_problem(n_vms, n_hosts)
    benchmark.pedantic(lambda: descending_best_fit(problem), rounds=3,
                       iterations=1)


def test_bench_hierarchical_round(benchmark):
    config = ScenarioConfig(pms_per_dc=4, n_vms=16, n_intervals=4)
    system = multidc_system(config)
    trace = multidc_trace(config)
    system.step(trace, 0)
    scheduler = HierarchicalScheduler(estimator=OracleEstimator())
    benchmark.pedantic(lambda: scheduler(system, trace, 1), rounds=3,
                       iterations=1)


class TestShape:
    def test_runtime_grows_subquadratically_in_practice(self):
        """Doubling VMs+hosts must not blow up by the 8x a naive cubic
        would give (sanity bound on the O(VMs x PMs) claim)."""
        def measure(n_vms, n_hosts):
            problem = flat_problem(n_vms, n_hosts)
            t0 = time.perf_counter()
            descending_best_fit(problem)
            return time.perf_counter() - t0

        measure(5, 4)  # warm-up
        t_small = min(measure(10, 8) for _ in range(3))
        t_big = min(measure(20, 16) for _ in range(3))
        assert t_big < 8.0 * max(t_small, 1e-4)

    def test_hierarchical_global_problem_is_narrow(self):
        """§IV.C: each DC offers only a few hosts to the global round."""
        config = ScenarioConfig(pms_per_dc=4, n_vms=16, n_intervals=4)
        system = multidc_system(config)
        trace = multidc_trace(config)
        system.step(trace, 0)
        scheduler = HierarchicalScheduler(estimator=OracleEstimator(),
                                          sla_move_threshold=1.0,
                                          max_offers_per_dc=2)
        scheduler(system, trace, 1)
        n_total_pms = len(system.pms)  # 16
        offered = len(scheduler.last_round.offered_hosts)
        assert offered < n_total_pms
