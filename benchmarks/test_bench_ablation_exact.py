"""Ablation A1 — Best-Fit vs the exact solver: optimality gap and runtime.

The paper justifies the greedy heuristic by MILP cost ("several minutes to
schedule 10 jobs among 40 candidate hosts" with GUROBI).  On small
instances our branch-and-bound measures how much objective the heuristic
actually gives up (expected: very little) and how the two runtimes scale.
"""

import time

import numpy as np
import pytest

from repro.core.bestfit import descending_best_fit
from repro.core.estimators import OracleEstimator
from repro.core.exact import exact_schedule
from repro.core.model import (HostView, SchedulingProblem, VMRequest,
                              evaluate_schedule)
from repro.core.profit import PriceBook
from repro.core.sla import PAPER_SLA
from repro.sim.demand import LoadVector
from repro.sim.machines import PhysicalMachine, VirtualMachine
from repro.sim.network import PAPER_LOCATIONS, paper_network_model


def make_problem(n_vms, n_hosts, seed):
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(n_vms):
        sources = {loc: LoadVector(float(rng.uniform(1, 15)), 4000.0, 0.05)
                   for loc in PAPER_LOCATIONS}
        requests.append(VMRequest(vm=VirtualMachine(vm_id=f"vm{i}"),
                                  contract=PAPER_SLA, loads=sources))
    hosts = [HostView.of(PhysicalMachine(pm_id=f"h{j}"),
                         PAPER_LOCATIONS[j % 4], 0.13)
             for j in range(n_hosts)]
    return SchedulingProblem(requests=requests, hosts=hosts,
                             network=paper_network_model(),
                             prices=PriceBook(),
                             estimator=OracleEstimator(),
                             interval_s=600.0)


@pytest.fixture(scope="module")
def gap_measurements():
    rows = []
    for seed in range(8):
        problem = make_problem(n_vms=5, n_hosts=4, seed=seed)
        t0 = time.perf_counter()
        bf = descending_best_fit(problem)
        t_bf = time.perf_counter() - t0
        t0 = time.perf_counter()
        exact = exact_schedule(problem)
        t_exact = time.perf_counter() - t0
        bf_value = evaluate_schedule(problem, bf.assignment)
        rows.append(dict(seed=seed, bf=bf_value, exact=exact.value_eur,
                         t_bf=t_bf, t_exact=t_exact,
                         nodes=exact.nodes_explored))
    return rows


def test_bench_bestfit_small_instance(benchmark):
    problem = make_problem(n_vms=5, n_hosts=4, seed=0)
    benchmark(lambda: descending_best_fit(problem))


def test_bench_exact_small_instance(benchmark):
    problem = make_problem(n_vms=5, n_hosts=4, seed=0)
    benchmark.pedantic(lambda: exact_schedule(problem), rounds=3,
                       iterations=1)


class TestShape:
    def test_exact_never_worse(self, gap_measurements):
        for row in gap_measurements:
            assert row["exact"] >= row["bf"] - 1e-9

    def test_average_gap_small(self, gap_measurements):
        """The paper's premise: Best-Fit is a good approximation."""
        gaps = [(r["exact"] - r["bf"]) / max(abs(r["exact"]), 1e-9)
                for r in gap_measurements]
        assert float(np.mean(gaps)) < 0.05

    def test_bestfit_much_faster(self, gap_measurements):
        speedups = [r["t_exact"] / max(r["t_bf"], 1e-9)
                    for r in gap_measurements]
        assert float(np.median(speedups)) > 3.0

    def test_report(self, gap_measurements):
        print()
        print("A1: Best-Fit vs exact (5 VMs x 4 hosts)")
        print(f"{'seed':>4} {'BF value':>10} {'exact':>10} {'gap %':>7} "
              f"{'t_BF ms':>8} {'t_exact ms':>10} {'nodes':>7}")
        for r in gap_measurements:
            gap = 100 * (r["exact"] - r["bf"]) / max(abs(r["exact"]), 1e-9)
            print(f"{r['seed']:>4} {r['bf']:>10.4f} {r['exact']:>10.4f} "
                  f"{gap:>7.2f} {1e3 * r['t_bf']:>8.2f} "
                  f"{1e3 * r['t_exact']:>10.2f} {r['nodes']:>7}")
