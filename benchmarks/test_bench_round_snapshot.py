"""Bench the round-snapshot scheduling layer — end-to-end schedule+step.

PR 1 vectorized placement scoring and PR 2 vectorized interval stepping;
after both, a hierarchical scheduling round was dominated by per-round
``build_problem`` re-materializing every request/host view from live
Python objects and by O(total-series) ``trace.load_at`` scans per VM.
This change removed both: ``WorkloadTrace`` gained a per-VM series index,
and the round-snapshot layer (``repro.core.bestfit.SchedulingRound`` +
``repro.core.model.RoundScorer``) builds every problem of a round from
the cached ``FleetState`` arrays with hoisted latency/migration/power
lookups.

Gates (on the 8-DC, 3000-VM, failures-on scenario, full engine loop):

* >= 5x end-to-end vs the scheduling round as it stood before this
  change (per-round ``build_problem`` with the un-indexed trace scans) —
  the headline number;
* >= 1.7x vs per-round ``build_problem`` with the index in place, which
  isolates what the snapshot layer itself buys (measured ~2x: the
  remaining cost is the packing arithmetic both paths share);
* identical placements every interval, reports within 1e-9.
"""

import pytest

from repro.experiments.scaling import (format_hierarchical_fleet,
                                       run_hierarchical_fleet,
                                       synthetic_hierarchical_fleet)


@pytest.fixture(scope="module")
def result():
    return run_hierarchical_fleet()


def test_bench_round_snapshot(benchmark, result):
    from repro.core.estimators import OracleEstimator
    from repro.core.hierarchical import HierarchicalScheduler
    from repro.sim.engine import run_simulation

    system, trace = synthetic_hierarchical_fleet()
    scheduler = HierarchicalScheduler(estimator=OracleEstimator(),
                                      sla_move_threshold=0.9)
    benchmark.pedantic(
        lambda: run_simulation(system, trace, scheduler=scheduler),
        rounds=1, iterations=1)
    print()
    print(format_hierarchical_fleet(result))


class TestShape:
    def test_snapshot_at_least_5x_vs_pre_change_path(self, result):
        assert result.seed_speedup >= 5.0, (
            f"round snapshot only {result.seed_speedup:.1f}x faster than "
            f"the pre-change per-round build path "
            f"({result.snapshot_s:.2f} s vs {result.seed_reference_s:.2f} s)")

    def test_snapshot_faster_than_indexed_per_round_build(self, result):
        assert result.speedup >= 1.7, (
            f"round snapshot only {result.speedup:.1f}x faster than "
            f"per-round build_problem "
            f"({result.snapshot_s:.2f} s vs {result.reference_s:.2f} s)")

    def test_placements_identical(self, result):
        assert result.placements_match

    def test_reports_within_1e9(self, result):
        assert result.max_abs_diff < 1e-9

    def test_scenario_is_large_with_failures(self, result):
        assert result.n_dcs >= 8
        assert result.n_vms >= 1000
        assert result.n_pms >= 256

    def test_run_produced_real_physics(self, result):
        assert 0.0 < result.mean_sla <= 1.0
        assert result.total_profit_eur != 0.0
        assert result.n_migrations > 0
