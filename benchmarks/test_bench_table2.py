"""Bench T2 — regenerate Table II (prices and latencies)."""

from repro.experiments.table2 import format_table2, run_table2


def test_bench_table2(benchmark):
    result = benchmark(run_table2)
    print()
    print(format_table2(result))
    # Pin the paper's constants.
    assert result.energy_eur_kwh == {"BRS": 0.1314, "BNG": 0.1218,
                                     "BCN": 0.1513, "BST": 0.1120}
    assert result.latency_ms[("BCN", "BST")] == 90.0
    assert result.latency_ms[("BRS", "BCN")] == 390.0
    assert result.bandwidth_gbps == 10.0
