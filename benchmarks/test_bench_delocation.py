"""Bench §V.C — regenerate the de-location benefit experiment.

Paper: fixed single DC SLA 0.8115 vs de-locating 0.8871 (+0.0756), worth
~0.348 EUR per VM per day.  Shape: de-location raises SLA and daily
benefit; the scheduler only moves VMs when overload justifies the latency.
"""

import pytest

from repro.experiments.delocation import format_delocation, run_delocation


@pytest.fixture(scope="module")
def result():
    return run_delocation()


def test_bench_delocation(benchmark):
    out = benchmark.pedantic(run_delocation, rounds=1, iterations=1)
    print()
    print(format_delocation(out))


class TestShape:
    def test_sla_gain_positive(self, result):
        assert result.sla_gain > 0.02

    def test_sla_gain_magnitude_near_paper(self, result):
        """Paper: +0.0756; accept the same order of magnitude."""
        assert 0.02 < result.sla_gain < 0.3

    def test_daily_benefit_positive(self, result):
        """Paper: +0.348 EUR/VM/day."""
        assert result.benefit_eur_per_vm_day > 0.05

    def test_fixed_baseline_stressed(self, result):
        """The experiment is only meaningful if home is overloaded."""
        assert result.fixed_summary.avg_sla < 0.95

    def test_delocation_used_selectively(self, result):
        """Some rounds de-locate, not all: the threshold behaviour the
        paper highlights ('able to decide when de-locating is worth it')."""
        migs = result.delocating_summary.n_migrations
        assert 0 < migs < result.delocating_summary.n_intervals
