"""Bench the arena tournament, with behavioural gates on the result.

One smoke-sized tournament (training-free roster, 2 draws) is timed
into the persisted benchmark JSON; the shape gates below it assert what
the run must *mean*: a full policy x draw matrix with zero invariant
violations, batch/scalar parity on every draw, and the per-round exact
optimum ranking at or above greedy oracle Best-Fit.
"""

import pytest

from repro.arena import (SMOKE_ROSTER, ArenaConfig, format_leaderboard,
                         run_tournament)

CONFIG = ArenaConfig(seed=0, n_draws=2, n_intervals=8,
                     policies=SMOKE_ROSTER)

_RESULTS = {}


def _run_once():
    if "arena" not in _RESULTS:
        _RESULTS["arena"] = run_tournament(CONFIG)
    return _RESULTS["arena"]


@pytest.mark.benchmark(group="arena")
def test_bench_tournament_smoke(benchmark):
    _RESULTS["arena"] = benchmark.pedantic(
        lambda: run_tournament(CONFIG), rounds=1, iterations=1)


class TestShape:
    def test_matrix_complete_and_clean(self):
        result = _run_once()
        played = {(c.draw, c.policy) for c in result.cells}
        skipped = {(d, p) for p, ds in result.skipped.items() for d in ds}
        assert len(played) + len(skipped) \
            == CONFIG.n_draws * len(CONFIG.policies)
        assert result.violations == []
        assert all(v <= 1e-9 for v in result.parity.values())

    def test_exact_optimum_at_least_oracle(self):
        rows = {r["policy"]: r for r in _run_once().leaderboard()}
        assert rows["exact"]["mean_rank"] <= rows["oracle"]["mean_rank"]

    def test_leaderboard_renders(self):
        text = format_leaderboard(_run_once())
        assert "Arena leaderboard" in text
        assert "invariants: OK" in text
