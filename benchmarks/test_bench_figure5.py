"""Bench F5 — regenerate Figure 5 (follow-the-load placement trace)."""

import pytest

from repro.experiments.figure5 import format_figure5, run_figure5


@pytest.fixture(scope="module")
def result():
    return run_figure5()


def test_bench_figure5(benchmark):
    out = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    print()
    print(format_figure5(out))


class TestShape:
    def test_vm_tours_every_dc(self, result):
        """The dominant source rotates through all four regions."""
        assert result.distinct_locations_visited == 4

    def test_placement_tracks_dominant_source(self, result):
        assert result.follow_fraction > 0.75

    def test_migration_count_is_moderate(self, result):
        """Follows the rotation (>= 3 moves) without flapping."""
        assert 3 <= result.n_migrations <= 12
