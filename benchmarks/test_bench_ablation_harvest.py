"""Ablation A5 — training-data volume vs model and scheduling quality.

Sweeps the exploration-harvest length and reports, per size, the SLA
predictor's validation quality and the outcome of a BF-ML day driven by
that model set.  Locates the knee where additional monitoring stops paying
(the paper trains on ~1-2k instances; this shows why that is enough).
"""

import pytest

from repro.experiments.harvest_ablation import (format_harvest_ablation,
                                                run_harvest_ablation)
from repro.experiments.scenario import ScenarioConfig

CONFIG = ScenarioConfig(n_intervals=144, scale=3.0, seed=7)
SWEEP = (12, 48, 144)


@pytest.fixture(scope="module")
def result():
    return run_harvest_ablation(CONFIG, harvest_intervals=SWEEP)


def test_bench_harvest_ablation(benchmark):
    out = benchmark.pedantic(
        lambda: run_harvest_ablation(CONFIG, harvest_intervals=SWEEP),
        rounds=1, iterations=1)
    print()
    print(format_harvest_ablation(out))


class TestShape:
    def test_model_quality_improves_with_data(self, result):
        first, last = result.points[0], result.points[-1]
        assert last.sla_model_corr >= first.sla_model_corr - 0.02

    def test_scheduling_quality_improves_or_holds(self, result):
        first, last = result.points[0], result.points[-1]
        assert last.run_avg_sla >= first.run_avg_sla - 0.03

    def test_paper_scale_harvest_is_sufficient(self, result):
        """At the paper's sample scale (~2k), the SLA model is excellent."""
        last = result.points[-1]
        assert last.n_samples > 1500
        assert last.sla_model_corr > 0.9
