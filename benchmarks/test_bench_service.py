"""Bench the warm placement server's micro-batched scoring path.

The service answers ``place`` queries against a warm session: one cached
``SchedulingRound`` per interval and — through
``SchedulingRound.pack_each`` — one shared nothing-released
``RoundScorer`` whose per-query cost is a single column release/restore
plus one vectorized scoring pass.  The cold reference is what a
per-request server would do: rebuild the round (host-base walk, fleet
snapshot, whole-fleet ``required_resources_batch``, two full estimator
passes for the scorer) for every query.

Gates (200-host x 500-VM synthetic fleet session, ML estimator,
64 placement queries through the real ``MicroBatcher``):

* >= 3x micro-batched warm throughput vs sequential per-request scoring;
* bit-identical placements and scores between the two paths.
"""

import time
from dataclasses import dataclass
from typing import Dict

import pytest

N_HOSTS = 200
N_VMS = 500
N_QUERIES = 64


@dataclass
class ServiceBenchResult:
    warm_s: float
    cold_s: float
    n_hosts: int
    n_vms: int
    n_queries: int
    n_batches: int
    max_batch: int
    warm_placements: Dict[str, dict]
    cold_placements: Dict[str, dict]

    @property
    def speedup(self) -> float:
        return self.cold_s / self.warm_s


def run_service_bench() -> ServiceBenchResult:
    from repro.core.bestfit import SchedulingRound
    from repro.core.estimators import MLEstimator
    from repro.experiments.scaling import synthetic_fleet_system
    from repro.experiments.training import train_paper_models
    from repro.service.batching import MicroBatcher
    from repro.service.state import Session, SessionStore

    system, trace = synthetic_fleet_system(
        n_hosts=N_HOSTS, n_vms=N_VMS, n_intervals=12, seed=7)
    models, _ = train_paper_models(
        lambda: synthetic_fleet_system(n_hosts=N_HOSTS, n_vms=N_VMS,
                                       n_intervals=12, seed=7)[0],
        trace, scales=(1.0,), seed=7)
    estimator = MLEstimator(models)
    vm_ids = sorted(system.vms)[:N_QUERIES]

    # Cold reference: per-request round rebuild, sequential.
    t0 = time.perf_counter()
    cold: Dict[str, dict] = {}
    for vm_id in vm_ids:
        round_ = SchedulingRound(system, trace, 0, estimator)
        result = round_.pack(round_.problem(scope_vms=[vm_id]))
        ev = result.evaluations[vm_id]
        cold[vm_id] = {"pm": result.assignment[vm_id],
                       "profit_eur": ev.profit_eur, "sla": ev.sla}
    cold_s = time.perf_counter() - t0

    # Warm path: one session, queries coalesced by the micro-batcher.
    store = SessionStore()
    store.add(Session(name="bench", system=system, trace=trace,
                      estimator=estimator))
    batcher = MicroBatcher(store, max_batch=32, max_wait_ms=2.0)
    try:
        t0 = time.perf_counter()
        futures = [batcher.submit("bench", [vm_id]) for vm_id in vm_ids]
        warm: Dict[str, dict] = {}
        for future in futures:
            for vm_id, entry in future.result(timeout=300).items():
                warm[vm_id] = {"pm": entry["pm"],
                               "profit_eur": entry["profit_eur"],
                               "sla": entry["sla"]}
        warm_s = time.perf_counter() - t0
        stats = batcher.stats.snapshot()
    finally:
        batcher.close()
    return ServiceBenchResult(
        warm_s=warm_s, cold_s=cold_s, n_hosts=N_HOSTS, n_vms=N_VMS,
        n_queries=len(vm_ids), n_batches=int(stats["batches"]),
        max_batch=int(stats["max_batch"]), warm_placements=warm,
        cold_placements=cold)


@pytest.fixture(scope="module")
def result():
    return run_service_bench()


def test_bench_service_place(benchmark, result):
    benchmark.pedantic(run_service_bench, rounds=1, iterations=1)
    print()
    print(f"warm micro-batched: {result.warm_s:.3f} s, "
          f"cold per-request: {result.cold_s:.3f} s "
          f"-> {result.speedup:.2f}x "
          f"({result.n_queries} queries, {result.n_batches} batches, "
          f"max batch {result.max_batch})")


class TestShape:
    def test_micro_batched_at_least_3x_sequential(self, result):
        assert result.speedup >= 3.0, (
            f"warm micro-batched scoring only {result.speedup:.2f}x "
            f"faster than sequential per-request rounds "
            f"({result.warm_s:.3f} s vs {result.cold_s:.3f} s)")

    def test_bit_identical_to_cold_path(self, result):
        assert result.warm_placements == result.cold_placements

    def test_queries_actually_coalesced(self, result):
        assert result.n_batches < result.n_queries
        assert result.max_batch > 1

    def test_session_is_large(self, result):
        assert result.n_hosts >= 200
        assert result.n_vms >= 500
        assert result.n_queries >= 64
