"""Extension bench — "follow the sun": green-energy tariffs (paper §II/§VI).

The paper claims a follow-the-sun/wind policy "could also be introduced
easily into the energy cost computation".  This bench does exactly that:
solar-discounted tariffs (cheap power while the local sun shines) under the
unchanged profit objective, measuring how much of the energy bill the
scheduler recovers by chasing daylight.
"""

import numpy as np
import pytest

from repro.core.policies import oracle_scheduler
from repro.sim.engine import run_simulation
from repro.sim.tariffs import solar_tariff
from repro.experiments.scenario import (ScenarioConfig, multidc_system,
                                        multidc_trace)

LOCATIONS = ("BRS", "BNG", "BCN", "BST")
CONFIG = ScenarioConfig(n_intervals=144, scale=2.0, affinity_boost=1.0,
                        seed=11)


def solar_system():
    system = multidc_system(CONFIG)
    system.tariff_schedule = solar_tariff(
        {loc: 3.0 for loc in LOCATIONS},
        n_intervals=CONFIG.n_intervals, solar_discount=0.9)
    return system


@pytest.fixture(scope="module")
def runs():
    trace = multidc_trace(CONFIG)
    dynamic = run_simulation(solar_system(), trace,
                             scheduler=oracle_scheduler())
    static = run_simulation(solar_system(), trace)
    return {"dynamic": dynamic, "static": static}


def test_bench_follow_the_sun(benchmark):
    trace = multidc_trace(CONFIG)
    out = benchmark.pedantic(
        lambda: run_simulation(solar_system(), trace,
                               scheduler=oracle_scheduler()),
        rounds=1, iterations=1)
    assert len(out) == CONFIG.n_intervals


class TestShape:
    def test_large_energy_bill_saving(self, runs):
        dyn = runs["dynamic"].summary().energy_cost_eur
        sta = runs["static"].summary().energy_cost_eur
        assert dyn < 0.5 * sta

    def test_vms_visit_multiple_dcs(self, runs):
        visited = set()
        for report in runs["dynamic"].reports:
            visited.update(v.location for v in report.vms.values())
        assert len(visited) >= 3

    def test_follows_daylight(self, runs):
        """Most VM-intervals are hosted where the sun currently shines."""
        tariffs = solar_system().tariff_schedule
        in_sun = 0
        total = 0
        for report in runs["dynamic"].reports:
            for v in report.vms.values():
                total += 1
                if tariffs.price(v.location, report.t) < 1.5:  # < half base
                    in_sun += 1
        assert in_sun / total > 0.5

    def test_report(self, runs):
        dyn, sta = runs["dynamic"].summary(), runs["static"].summary()
        print()
        print("EXT: follow-the-sun under solar tariffs")
        print(f"{'run':<8} {'energy EUR':>11} {'avg SLA':>8} {'migr':>5}")
        print(f"{'static':<8} {sta.energy_cost_eur:>11.3f} "
              f"{sta.avg_sla:>8.3f} {sta.n_migrations:>5d}")
        print(f"{'dynamic':<8} {dyn.energy_cost_eur:>11.3f} "
              f"{dyn.avg_sla:>8.3f} {dyn.n_migrations:>5d}")
