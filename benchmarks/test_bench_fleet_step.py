"""Bench fleet stepping — array-backed vs scalar full simulation.

PR 1 made placement scoring ~70x faster, leaving the per-VM stepping loops
of ``MultiDCSystem.step`` as the simulator's bottleneck.  The batch
stepping subsystem (:mod:`repro.sim.fleet`) must clear a >= 5x end-to-end
speedup on a full 500-VM x 200-PM x 96-interval simulation while
reproducing the scalar reference reports within 1e-9 on every field.
"""

import pytest

from repro.experiments.scaling import (format_fleet_simulation,
                                       run_fleet_simulation,
                                       synthetic_fleet_system)


@pytest.fixture(scope="module")
def result():
    return run_fleet_simulation(n_hosts=200, n_vms=500, n_intervals=96,
                                seed=7)


def test_bench_fleet_step(benchmark, result):
    from repro.sim.engine import run_simulation

    system, trace = synthetic_fleet_system(n_hosts=200, n_vms=500,
                                           n_intervals=96, seed=7)
    benchmark.pedantic(lambda: run_simulation(system, trace, batch=True),
                       rounds=3, iterations=1)
    print()
    print(format_fleet_simulation(result))


class TestShape:
    def test_batch_at_least_5x_faster(self, result):
        assert result.speedup >= 5.0, (
            f"batch stepping only {result.speedup:.1f}x faster "
            f"({result.batch_s:.2f} s vs {result.scalar_s:.2f} s)")

    def test_batch_reproduces_scalar_reports(self, result):
        assert result.max_abs_diff < 1e-9

    def test_scenario_is_large(self, result):
        assert result.n_pms >= 200
        assert result.n_vms >= 500
        assert result.n_intervals >= 96

    def test_run_produced_real_physics(self, result):
        assert 0.0 < result.mean_sla <= 1.0
        assert result.total_profit_eur != 0.0
