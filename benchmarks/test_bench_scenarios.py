"""Bench the catalog scenarios at full size, with behavioural gates.

The ROADMAP scenarios run straight from the registry
(``repro.experiments.catalog``), exactly as ``python -m repro.cli
scenarios run <name>`` would:

* ``flash_crowd_failures`` — the 4x surge lands while up to two hosts
  are down; the managed run must absorb both stressors at once.
* ``follow_the_sun_8dc`` — solar tariffs sweep one full day over
  8 DCs x 3000 VMs; the wide-interface run must chase the sun across
  DCs and cut the energy bill, the paper's QoS-only interface must not.
* ``ml_large_fleet`` — Table I models (trained on a small fleet)
  schedule 500 VMs x 200 PMs through
  ``MLEstimator.required_resources_batch``, with the PR 5 ranking
  ladder: raw models vs bagged ensembles vs the calibrated,
  variance-penalized ranking.  Gates: the calibrated variant recovers
  SLA >= 0.80 (raw ~0.44) while keeping >= 2/3 of the raw variant's
  energy cut vs static.

On top of the scenario runs, ``test_bench_ensemble_inference`` gates
the shared-matrix ensemble-stats path (one design matrix, one stacked
member pass for mean *and* spread) at >= 3x over the naive per-member
loop (one 1-row member prediction per candidate host for the mean,
another for the spread — what the scalar scoring path would cost).

Each scenario is executed once: the ``test_bench_*`` test times it into
the persisted benchmark JSON (`BENCH_5.json` in CI) and caches the
result for the shape gates below it.
"""

import time

import numpy as np
import pytest

from repro.experiments import run_scenario
from repro.experiments.engine import format_scenario_result

_RESULTS = {}


def _run_once(name):
    if name not in _RESULTS:
        _RESULTS[name] = run_scenario(name)
    return _RESULTS[name]


def _bench(benchmark, name):
    _RESULTS[name] = benchmark.pedantic(lambda: run_scenario(name),
                                        rounds=1, iterations=1)
    print()
    print(format_scenario_result(_RESULTS[name]))


def test_bench_flash_crowd_failures(benchmark):
    _bench(benchmark, "flash_crowd_failures")


def test_bench_follow_the_sun_8dc(benchmark):
    _bench(benchmark, "follow_the_sun_8dc")


def test_bench_ml_large_fleet(benchmark):
    _bench(benchmark, "ml_large_fleet")


class TestFlashCrowdFailures:
    @pytest.fixture(scope="class")
    def result(self):
        return _run_once("flash_crowd_failures")

    def test_both_stressors_present(self, result):
        managed = result.variant("managed")
        assert len(managed.failure_injector.events) > 0
        rps = managed.series["total_rps"]
        # The minute-70-90 surge at 10-minute rounds: intervals 7-8.
        assert rps[7] > 2.0 * rps[:6].mean()

    def test_managed_absorbs_the_interaction(self, result):
        managed = result.variant("managed").summary
        unmanaged = result.variant("unmanaged").summary
        assert managed.avg_sla > unmanaged.avg_sla + 0.2
        assert managed.profit_eur > unmanaged.profit_eur
        # Orphan re-placement crosses DCs when the home DC is down.
        assert managed.n_inter_dc_migrations > 0


class TestFollowTheSun8DC:
    @pytest.fixture(scope="class")
    def result(self):
        return _run_once("follow_the_sun_8dc")

    def test_scale_is_the_roadmap_scale(self, result):
        fleet = result.spec.fleet
        assert fleet.params["n_dcs"] >= 8
        assert fleet.params["n_vms"] >= 3000

    def test_wide_interface_chases_the_sun(self, result):
        assert (result.variant("follow_the_sun").summary
                .n_inter_dc_migrations > 0)

    def test_qos_only_interface_cannot(self, result):
        """§IV.C narrowing: energy alone never moves a VM across DCs."""
        assert (result.variant("narrow").summary
                .n_inter_dc_migrations == 0)

    def test_energy_bill_cut_without_sla_collapse(self, result):
        follow = result.variant("follow_the_sun").summary
        static = result.variant("static").summary
        assert follow.energy_cost_eur < 0.75 * static.energy_cost_eur
        assert follow.avg_sla > static.avg_sla - 0.05


class TestMLLargeFleet:
    @pytest.fixture(scope="class")
    def result(self):
        return _run_once("ml_large_fleet")

    def test_models_transferred_to_the_large_fleet(self, result):
        ml = result.variant("bf_ml")
        assert ml.models is not None
        assert ml.summary.n_migrations > 0

    def test_ml_cuts_the_energy_bill(self, result):
        ml = result.variant("bf_ml").summary
        static = result.variant("static").summary
        assert ml.energy_cost_eur < 0.6 * static.energy_cost_eur

    def test_oracle_bounds_the_headroom(self, result):
        """Perfect models beat static; the raw transferred models' SLA
        gap vs the oracle is the ranking-amplification headroom the
        calibrated variant recovers (see ``ml_large_fleet_spec``)."""
        oracle = result.variant("oracle").summary
        static = result.variant("static").summary
        assert oracle.avg_sla > static.avg_sla
        profits = {name: v.summary.avg_eur_per_hour
                   for name, v in result.variants.items()}
        assert profits["oracle"] >= max(profits.values()) - 1e-9

    def test_raw_ranking_amplification_is_real(self, result):
        """The failure mode the risk subsystem exists for: raw argmax
        over 200 hosts burns SLA far below the oracle."""
        raw = result.variant("bf_ml").summary
        oracle = result.variant("oracle").summary
        assert raw.avg_sla < oracle.avg_sla - 0.3

    def test_calibrated_ranking_recovers_sla(self, result):
        """PR 5 acceptance gate: SLA >= 0.80 (raw ~0.44)."""
        cal = result.variant("bf_ml_calibrated").summary
        assert cal.avg_sla >= 0.80

    def test_calibrated_keeps_two_thirds_of_the_energy_cut(self, result):
        """PR 5 acceptance gate: >= 2/3 of the raw ML energy cut vs
        static survives the risk aversion."""
        raw = result.variant("bf_ml").summary
        cal = result.variant("bf_ml_calibrated").summary
        static = result.variant("static").summary
        raw_cut = static.energy_cost_eur - raw.energy_cost_eur
        cal_cut = static.energy_cost_eur - cal.energy_cost_eur
        assert raw_cut > 0
        assert cal_cut >= (2.0 / 3.0) * raw_cut

    def test_calibrated_beats_raw_and_bagged_profit(self, result):
        """Risk aversion pays for itself: the recovered SLA revenue
        dwarfs the extra energy spend, and mean-only bagging alone
        does not achieve it."""
        profits = {name: result.variant(name).summary.profit_eur
                   for name in ("bf_ml", "bf_ml_bagged",
                                "bf_ml_calibrated")}
        assert profits["bf_ml_calibrated"] > profits["bf_ml"]
        assert profits["bf_ml_calibrated"] > profits["bf_ml_bagged"]

    def test_bagged_variants_share_one_training(self, result):
        assert (result.variant("bf_ml_bagged").models
                is result.variant("bf_ml_calibrated").models)


# =============================================================================
# Ensemble inference: shared-matrix stats vs the naive per-member loop
# =============================================================================

@pytest.fixture(scope="module")
def bagged_setup():
    """A 5-member bagged model set plus a 200-host candidate slate."""
    from repro.experiments.scenario import (ScenarioConfig, multidc_system,
                                            multidc_trace)
    from repro.experiments.training import harvest
    from repro.ml.predictors import train_model_set
    from repro.sim.demand import LoadVector

    config = ScenarioConfig(n_intervals=48, scale=3.0, seed=5)
    monitor = harvest(lambda: multidc_system(config), multidc_trace(config),
                      scales=(0.7, 1.4, 2.2), seed=9)
    models = train_model_set(monitor, rng=np.random.default_rng(11),
                             bagging=5)
    load = LoadVector(rps=25.0, bytes_per_req=5000.0,
                      cpu_time_per_req=0.05)
    n = 200
    grants = (np.linspace(10.0, 400.0, n), np.full(n, 512.0),
              np.full(n, 1000.0))
    return models, load, grants


def _naive_member_loop(models, load, grants):
    """The pre-stats cost of (mean, spread) per candidate host: one
    1-row prediction per member per host for the mean (``predict``),
    and another full member pass for the spread (``predict_std``)."""
    gc, gm, gb = grants
    bag = models["vm_sla"].model
    n = gc.shape[0]
    mean = np.empty(n)
    spread = np.empty(n)
    for i in range(n):
        X = models._placement_matrix(load, gc[i:i + 1], gm[i:i + 1],
                                     gb[i:i + 1], 0.0)
        mean[i] = bag.predict(X)[0]
        spread[i] = bag.predict_std(X)[0]
    return np.clip(mean, 0.0, 1.0), spread


def test_bench_ensemble_inference(benchmark, bagged_setup):
    """Time the shared-matrix ensemble-stats path (the gate is below)."""
    models, load, grants = bagged_setup
    gc, gm, gb = grants
    benchmark.pedantic(
        lambda: models.predict_sla_batch_stats(load, gc, gm, gb),
        rounds=5, iterations=2)


class TestEnsembleInferenceSpeedup:
    @pytest.fixture(scope="class")
    def timings(self, bagged_setup):
        models, load, grants = bagged_setup
        gc, gm, gb = grants

        def timed(fn, reps):
            fn()  # warm up
            t0 = time.perf_counter()
            for _ in range(reps):
                fn()
            return (time.perf_counter() - t0) / reps

        shared_s = timed(
            lambda: models.predict_sla_batch_stats(load, gc, gm, gb), 5)
        naive_s = timed(
            lambda: _naive_member_loop(models, load, grants), 2)
        return shared_s, naive_s

    def test_shared_matrix_at_least_3x_faster(self, bagged_setup, timings):
        shared_s, naive_s = timings
        speedup = naive_s / shared_s
        assert speedup >= 3.0, (
            f"shared-matrix ensemble inference only {speedup:.1f}x faster "
            f"({shared_s * 1e3:.1f} ms vs {naive_s * 1e3:.1f} ms)")

    def test_same_statistics(self, bagged_setup):
        models, load, grants = bagged_setup
        gc, gm, gb = grants
        mean, spread = models.predict_sla_batch_stats(load, gc, gm, gb)
        ref_mean, ref_spread = _naive_member_loop(models, load, grants)
        np.testing.assert_allclose(mean, ref_mean, atol=1e-9)
        np.testing.assert_allclose(spread, ref_spread, atol=1e-9)
