"""Bench the PR 4 catalog scenarios at full size, with behavioural gates.

The three ROADMAP scenarios run straight from the registry
(``repro.experiments.catalog``), exactly as ``python -m repro.cli
scenarios run <name>`` would:

* ``flash_crowd_failures`` — the 4x surge lands while up to two hosts
  are down; the managed run must absorb both stressors at once.
* ``follow_the_sun_8dc`` — solar tariffs sweep one full day over
  8 DCs x 3000 VMs; the wide-interface run must chase the sun across
  DCs and cut the energy bill, the paper's QoS-only interface must not.
* ``ml_large_fleet`` — Table I models (trained on a small fleet)
  schedule 500 VMs x 200 PMs through
  ``MLEstimator.required_resources_batch``; the oracle variant bounds
  what perfect models achieve.

Each scenario is executed once: the ``test_bench_*`` test times it into
the persisted benchmark JSON (`BENCH_4.json` in CI) and caches the
result for the shape gates below it.
"""

import pytest

from repro.experiments import run_scenario
from repro.experiments.engine import format_scenario_result

_RESULTS = {}


def _run_once(name):
    if name not in _RESULTS:
        _RESULTS[name] = run_scenario(name)
    return _RESULTS[name]


def _bench(benchmark, name):
    _RESULTS[name] = benchmark.pedantic(lambda: run_scenario(name),
                                        rounds=1, iterations=1)
    print()
    print(format_scenario_result(_RESULTS[name]))


def test_bench_flash_crowd_failures(benchmark):
    _bench(benchmark, "flash_crowd_failures")


def test_bench_follow_the_sun_8dc(benchmark):
    _bench(benchmark, "follow_the_sun_8dc")


def test_bench_ml_large_fleet(benchmark):
    _bench(benchmark, "ml_large_fleet")


class TestFlashCrowdFailures:
    @pytest.fixture(scope="class")
    def result(self):
        return _run_once("flash_crowd_failures")

    def test_both_stressors_present(self, result):
        managed = result.variant("managed")
        assert len(managed.failure_injector.events) > 0
        rps = managed.series["total_rps"]
        # The minute-70-90 surge at 10-minute rounds: intervals 7-8.
        assert rps[7] > 2.0 * rps[:6].mean()

    def test_managed_absorbs_the_interaction(self, result):
        managed = result.variant("managed").summary
        unmanaged = result.variant("unmanaged").summary
        assert managed.avg_sla > unmanaged.avg_sla + 0.2
        assert managed.profit_eur > unmanaged.profit_eur
        # Orphan re-placement crosses DCs when the home DC is down.
        assert managed.n_inter_dc_migrations > 0


class TestFollowTheSun8DC:
    @pytest.fixture(scope="class")
    def result(self):
        return _run_once("follow_the_sun_8dc")

    def test_scale_is_the_roadmap_scale(self, result):
        fleet = result.spec.fleet
        assert fleet.params["n_dcs"] >= 8
        assert fleet.params["n_vms"] >= 3000

    def test_wide_interface_chases_the_sun(self, result):
        assert (result.variant("follow_the_sun").summary
                .n_inter_dc_migrations > 0)

    def test_qos_only_interface_cannot(self, result):
        """§IV.C narrowing: energy alone never moves a VM across DCs."""
        assert (result.variant("narrow").summary
                .n_inter_dc_migrations == 0)

    def test_energy_bill_cut_without_sla_collapse(self, result):
        follow = result.variant("follow_the_sun").summary
        static = result.variant("static").summary
        assert follow.energy_cost_eur < 0.75 * static.energy_cost_eur
        assert follow.avg_sla > static.avg_sla - 0.05


class TestMLLargeFleet:
    @pytest.fixture(scope="class")
    def result(self):
        return _run_once("ml_large_fleet")

    def test_models_transferred_to_the_large_fleet(self, result):
        ml = result.variant("bf_ml")
        assert ml.models is not None
        assert ml.summary.n_migrations > 0

    def test_ml_cuts_the_energy_bill(self, result):
        ml = result.variant("bf_ml").summary
        static = result.variant("static").summary
        assert ml.energy_cost_eur < 0.6 * static.energy_cost_eur

    def test_oracle_bounds_the_headroom(self, result):
        """Perfect models beat static; the transferred models' SLA gap
        vs the oracle is the documented ranking-amplification headroom
        (see ``ml_large_fleet_spec``)."""
        oracle = result.variant("oracle").summary
        static = result.variant("static").summary
        assert oracle.avg_sla > static.avg_sla
        profits = {name: v.summary.avg_eur_per_hour
                   for name, v in result.variants.items()}
        assert profits["oracle"] >= max(profits.values()) - 1e-9
