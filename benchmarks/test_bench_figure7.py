"""Bench F7 — regenerate Figure 7 (static vs dynamic time series)."""

import pytest

from repro.experiments.figure7 import format_figure7, run_figure7


@pytest.fixture(scope="module")
def result(paper_config, paper_models):
    return run_figure7(paper_config, models=paper_models)


def test_bench_figure7(benchmark, paper_config, paper_models):
    out = benchmark.pedantic(
        lambda: run_figure7(paper_config, models=paper_models),
        rounds=1, iterations=1)
    print()
    print(format_figure7(out))


class TestShape:
    def test_dynamic_below_static_most_of_the_day(self, result):
        assert result.fraction_intervals_saving_energy > 0.7

    def test_total_saving_large(self, result):
        """Paper: ~42 % energy saved."""
        assert result.table3.energy_saving_fraction > 0.20

    def test_sla_series_comparable(self, result):
        """Dynamic SLA stays in the static band on average."""
        assert abs(result.dynamic_sla.mean()
                   - result.static_sla.mean()) < 0.03

    def test_series_full_day(self, result):
        assert len(result.static_watts) == 144
