"""Bench F8 — regenerate Figure 8 (SLA vs energy vs load characteristic).

Paper: "given the amount of load, as we want to improve the SLA fulfillment
we are forced to consume more energy"; each load level has its own
SLA-vs-energy characteristic.
"""

import pytest

from repro.experiments.figure8 import format_figure8, run_figure8


@pytest.fixture(scope="module")
def result(paper_config, paper_models):
    return run_figure8(paper_config, models=paper_models)


def test_bench_figure8(benchmark, paper_config, paper_models):
    out = benchmark.pedantic(
        lambda: run_figure8(paper_config, models=paper_models),
        rounds=1, iterations=1)
    print()
    print(format_figure8(out))


class TestShape:
    def test_grid_complete(self, result):
        assert len(result.points) == 3 * 4

    def test_energy_buys_sla_within_load_level(self, result):
        """More energy => at least as much SLA, on most frontier steps."""
        assert result.monotone_fraction() > 0.55

    def test_energy_weight_reduces_watts(self, result):
        for scale in result.scales:
            pts = sorted((p for p in result.points if p.scale == scale),
                         key=lambda p: p.energy_weight)
            assert pts[-1].avg_watts <= pts[0].avg_watts + 1e-6

    def test_higher_load_needs_more_energy_for_best_sla(self, result):
        """Compare the least-stingy operating point across load levels."""
        frontier = {scale: max((p for p in result.points
                                if p.scale == scale),
                               key=lambda p: p.avg_sla)
                    for scale in result.scales}
        lo, hi = min(result.scales), max(result.scales)
        assert frontier[hi].avg_watts >= frontier[lo].avg_watts - 5.0
