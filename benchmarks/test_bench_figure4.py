"""Bench F4 — regenerate Figure 4 (intra-DC BF vs BF-OB vs BF-ML).

Paper shape: plain BF consolidates too hard and loses SLA under load;
BF-ML pays energy to protect SLA ("as long as SLA revenue pays for the
energy and migration costs"); BF-OB protects SLA by brute overbooking at
the highest energy.
"""

import pytest

from repro.experiments.figure4 import format_figure4, run_figure4


@pytest.fixture(scope="module")
def result():
    return run_figure4()


def test_bench_figure4(benchmark):
    out = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    print()
    print(format_figure4(out))


class TestShape:
    def test_ml_beats_plain_bf_on_sla(self, result):
        assert result.sla_of("BF-ML") > result.sla_of("BF") + 0.05

    def test_plain_bf_uses_least_energy(self, result):
        assert result.watts_of("BF") <= result.watts_of("BF-ML")
        assert result.watts_of("BF") <= result.watts_of("BF-OB")

    def test_ml_cheaper_than_overbooking(self, result):
        """BF-ML reaches BF-OB-like SLA without booking twice everything."""
        assert result.watts_of("BF-ML") < result.watts_of("BF-OB")
        assert result.sla_of("BF-ML") > result.sla_of("BF-OB") - 0.05

    def test_ml_most_profitable_or_close(self, result):
        euros = {k: s.avg_eur_per_hour for k, s in result.summaries.items()}
        assert euros["BF-ML"] >= max(euros.values()) - 0.02

    def test_ml_deconsolidates_under_load(self, result):
        """The paper's key observation: BF-ML '(de-)consolidates
        constantly to adapt VMs to the load level'."""
        import numpy as np
        history = result.histories["BF-ML"]
        pms_on = history.pms_on_series()
        assert pms_on.max() - pms_on.min() >= 1.0
        rps = history.total_rps_series()
        assert np.corrcoef(rps, pms_on)[0, 1] > 0.3
