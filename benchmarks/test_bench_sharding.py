"""Bench + gates for sharded stepping and streaming at the 50k-VM scale.

Two claims from the PR-8 acceptance, each pinned as an assertion:

* **Parity at scale** — ``huge_fleet_stream`` plays the same static
  placement through the sharded facade and the monolithic reference;
  every aggregate KPI agrees within 1e-9 (relative).  Both variants
  stream their per-interval KPIs to JSONL sinks, so the bench itself is
  a bounded-memory run — the 50k-VM in-memory history (hundreds of MB
  of per-VM reports) never materializes.
* **Bounded memory** — at a reduced fleet (``REPRO_HUGE_FLEET_MEM_SCALE``,
  default 0.2 = 10k VMs, small enough to tracemalloc-instrument cheaply)
  the streamed sharded run's peak traced memory stays below half the
  in-memory run's peak, and is *flat in the horizon*: tripling the
  number of intervals must not grow the streamed peak by more than 25 %,
  while the in-memory peak (one per-VM report per interval) grows
  near-linearly.

Knobs (the CI memory-budget job turns them down; nightly can turn up):

* ``REPRO_HUGE_FLEET_SCALE`` — fleet multiplier for the wall-clock
  bench; 1.0 is the 50k-VM run of the ROADMAP, 2.0 the 100k-VM run.
* ``REPRO_HUGE_FLEET_INTERVALS`` — horizon of the wall-clock bench.
* ``REPRO_HUGE_FLEET_MEM_SCALE`` — fleet multiplier for the
  tracemalloc gates.
"""

import gc
import json
import os
import tracemalloc

import pytest

from repro.experiments.catalog import huge_fleet_stream_spec
from repro.experiments.engine import format_scenario_result, run_scenario
from repro.sim.engine import run_simulation
from repro.sim.metrics import JsonlMetricsSink

SCALE = float(os.environ.get("REPRO_HUGE_FLEET_SCALE", "1.0"))
INTERVALS = int(os.environ.get("REPRO_HUGE_FLEET_INTERVALS", "6"))
MEM_SCALE = float(os.environ.get("REPRO_HUGE_FLEET_MEM_SCALE", "0.2"))

_RESULTS = {}


def _run_streamed(tmp_dir):
    spec = huge_fleet_stream_spec(n_intervals=INTERVALS, scale=SCALE)
    return run_scenario(
        spec, sink_factory=lambda name: JsonlMetricsSink(
            os.path.join(tmp_dir, f"kpis.{name}.jsonl")))


def _result(tmp_path_factory):
    if "huge" not in _RESULTS:
        out = tmp_path_factory.mktemp("huge_fleet_stream")
        _RESULTS["huge"] = run_scenario(
            huge_fleet_stream_spec(n_intervals=INTERVALS, scale=SCALE),
            sink_factory=lambda name: JsonlMetricsSink(
                out / f"kpis.{name}.jsonl"))
    return _RESULTS["huge"]


def test_bench_huge_fleet_stream(benchmark, tmp_path_factory):
    """Wall-clock of the full streamed run (both variants, 50k VMs)."""
    out = tmp_path_factory.mktemp("huge_fleet_stream")
    _RESULTS["huge"] = benchmark.pedantic(
        lambda: run_scenario(
            huge_fleet_stream_spec(n_intervals=INTERVALS, scale=SCALE),
            sink_factory=lambda name: JsonlMetricsSink(
                out / f"kpis.{name}.jsonl")),
        rounds=1, iterations=1)
    print()
    print(format_scenario_result(_RESULTS["huge"]))


class TestHugeFleetParity:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        return _result(tmp_path_factory)

    def test_fleet_is_at_scale(self, result):
        params = result.spec.fleet.params
        assert params["n_vms"] >= int(50_000 * SCALE)
        assert params["n_dcs"] >= 8

    def test_sharded_matches_monolithic_within_1e9(self, result):
        sharded = result.variant("sharded").kpis()
        mono = result.variant("monolithic").kpis()
        assert set(sharded) == set(mono)
        for key in sharded:
            if key == "run_s":
                continue
            assert sharded[key] == pytest.approx(mono[key], rel=1e-9,
                                                 abs=1e-9), key

    def test_both_variants_streamed(self, result):
        assert set(result.streams) == {"sharded", "monolithic"}
        for path in result.streams.values():
            with open(path) as fh:
                rows = [json.loads(line) for line in fh]
            assert len(rows) == INTERVALS

    def test_streamed_kpis_are_live(self, result):
        s = result.variant("sharded").summary
        assert s.n_intervals == INTERVALS
        assert 0.0 < s.avg_sla <= 1.0
        assert s.total_energy_wh > 0.0


# =============================================================================
# Memory gates: streamed sharded run vs the in-memory report history
# =============================================================================

def _peak_bytes(horizon, streamed, tmp_dir):
    """Peak traced bytes of one run; the fleet build stays untraced."""
    spec = huge_fleet_stream_spec(n_intervals=horizon, scale=MEM_SCALE)
    system, fleet_trace = spec.fleet.build()
    trace = spec.workload.build(fleet_trace)
    gc.collect()
    tracemalloc.start()
    try:
        if streamed:
            with JsonlMetricsSink(
                    os.path.join(tmp_dir, f"gate{horizon}.jsonl")) as sink:
                run_simulation(system, trace, sharded=True, sink=sink,
                               keep_reports=False)
        else:
            run_simulation(system, trace)
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


class TestMemoryBudget:
    @pytest.fixture(scope="class")
    def peaks(self, tmp_path_factory):
        tmp = str(tmp_path_factory.mktemp("memory_gate"))
        return {
            ("stream", 2): _peak_bytes(2, True, tmp),
            ("stream", 6): _peak_bytes(6, True, tmp),
            ("memory", 2): _peak_bytes(2, False, tmp),
            ("memory", 6): _peak_bytes(6, False, tmp),
        }

    def test_streamed_peak_below_half_of_in_memory(self, peaks):
        streamed, in_memory = peaks[("stream", 6)], peaks[("memory", 6)]
        assert streamed < 0.5 * in_memory, (
            f"streamed peak {streamed / 1e6:.1f} MB not below half the "
            f"in-memory peak {in_memory / 1e6:.1f} MB")

    def test_streamed_peak_flat_in_horizon(self, peaks):
        short, long = peaks[("stream", 2)], peaks[("stream", 6)]
        assert long < 1.25 * short, (
            f"streamed peak grew with the horizon: {short / 1e6:.1f} MB "
            f"at T=2 vs {long / 1e6:.1f} MB at T=6")

    def test_in_memory_peak_grows_with_horizon(self, peaks):
        """The contrast that makes the flatness gate meaningful: the
        report history really is linear in the horizon."""
        short, long = peaks[("memory", 2)], peaks[("memory", 6)]
        assert long > 1.5 * short
