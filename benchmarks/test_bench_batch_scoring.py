"""Bench batch scoring — vectorized vs scalar Best-Fit on a large fleet.

The paper's pitch is that Ordered Best-Fit is fast enough to re-run every
10 minutes where MILP takes minutes for tens of jobs.  The batch scoring
subsystem extends that argument to production fleet sizes: one 500-VM x
200-host round must clear a >= 5x speedup over the scalar reference loop
while computing the *same* schedule.
"""

import pytest

from repro.experiments.scaling import format_large_fleet, run_large_fleet


@pytest.fixture(scope="module")
def result():
    return run_large_fleet(n_hosts=200, n_vms=500, seed=7)


def test_bench_batch_scoring(benchmark, result):
    from repro.core.bestfit import descending_best_fit
    from repro.experiments.scaling import synthetic_fleet_problem

    problem = synthetic_fleet_problem(n_hosts=200, n_vms=500, seed=7)
    benchmark.pedantic(lambda: descending_best_fit(problem, batch=True),
                       rounds=3, iterations=1)
    print()
    print(format_large_fleet(result))


class TestShape:
    def test_batch_at_least_5x_faster(self, result):
        assert result.speedup >= 5.0, (
            f"batch path only {result.speedup:.1f}x faster "
            f"({result.batch_ms:.1f} ms vs {result.scalar_ms:.1f} ms)")

    def test_batch_computes_the_same_schedule(self, result):
        assert result.assignments_match
        assert result.profit_abs_diff < 1e-9

    def test_fleet_is_large(self, result):
        assert result.n_pms >= 200
        assert result.n_vms >= 500
