"""Bench F6 — regenerate Figure 6 (full inter-DC run with flash crowd).

Paper observations: (1) heavy load => deconsolidation across DCs;
(2) safe SLA => consolidation toward cheap energy; (3) the minute-70-90
flash crowd exceeds system capacity (kept for realism).
"""

import numpy as np
import pytest

from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.scenario import ScenarioConfig
from repro.workload.patterns import PAPER_FLASH_CROWD


@pytest.fixture(scope="module")
def result(paper_models):
    config = ScenarioConfig(flash_crowds=(PAPER_FLASH_CROWD,))
    return run_figure6(config, models=paper_models)


def test_bench_figure6(benchmark, paper_models):
    config = ScenarioConfig(flash_crowds=(PAPER_FLASH_CROWD,))
    out = benchmark.pedantic(
        lambda: run_figure6(config, models=paper_models),
        rounds=1, iterations=1)
    print()
    print(format_figure6(out))


class TestShape:
    def test_flash_crowd_dominates_load(self, result):
        mask = result._window_mask()
        assert (result.rps_series[mask].mean()
                > 2.0 * result.rps_series[~mask].mean())

    def test_sla_collapses_during_flash(self, result):
        """The crowd 'clearly exceeds the capacity of the system'."""
        assert result.sla_dip_during_flash > 0.3

    def test_deconsolidation_under_load(self, result):
        """Observation 1: more PMs on when request rate is high."""
        assert result.deconsolidation_correlation > 0.0

    def test_consolidation_in_troughs(self, result):
        """Observation 2: the system runs on fewer PMs than the fleet
        during low-load periods."""
        assert result.pms_on_series.min() <= 2

    def test_migrations_bounded(self, result):
        """Observation 3: no pointless churn (at most ~1 move per VM per
        scheduling round on average)."""
        n_vms = 5
        assert result.summary.n_migrations < n_vms * len(result.sla_series) / 3
